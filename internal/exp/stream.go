package exp

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Shard selects a deterministic subset of a job batch: the jobs whose
// index i satisfies i % Count == Index. The zero value selects every job
// (an unsharded run). Sharding composes with streaming so a large sweep
// splits across machines: each machine runs its shard with the same job
// list and the merged per-shard outputs are byte-identical to an
// unsharded run (see MergeJSONL).
type Shard struct {
	// Index identifies this shard, 0 <= Index < Count.
	Index int
	// Count is the total number of shards; values < 2 mean "all jobs".
	Count int
}

// Validate checks the shard coordinates.
func (s Shard) Validate() error {
	if s.Count < 0 || s.Index < 0 {
		return fmt.Errorf("exp: negative shard %d/%d", s.Index, s.Count)
	}
	if s.Count >= 1 && s.Index >= s.Count {
		return fmt.Errorf("exp: shard index %d out of range for %d shards", s.Index, s.Count)
	}
	return nil
}

// All reports whether the shard selects every job.
func (s Shard) All() bool { return s.Count < 2 }

// Owns reports whether job index i belongs to this shard.
func (s Shard) Owns(i int) bool { return s.All() || i%s.Count == s.Index }

// String renders the shard as "index/count" ("" for the full batch).
func (s Shard) String() string {
	if s.All() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShard parses "i/N" shard syntax (the CLIs' -shard flag). The empty
// string is the full, unsharded batch.
func ParseShard(spec string) (Shard, error) {
	if spec == "" {
		return Shard{}, nil
	}
	idx, count, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("exp: shard %q is not i/N", spec)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return Shard{}, fmt.Errorf("exp: shard index %q: %w", idx, err)
	}
	n, err := strconv.Atoi(count)
	if err != nil {
		return Shard{}, fmt.Errorf("exp: shard count %q: %w", count, err)
	}
	s := Shard{Index: i, Count: n}
	if n < 1 {
		return Shard{}, fmt.Errorf("exp: shard count must be >= 1, got %d", n)
	}
	return s, s.Validate()
}

// Sink consumes streamed results. Emit is called from the streaming
// goroutine only (never concurrently), strictly in ascending job-index
// order, as soon as each result's predecessors have been delivered — not
// after the whole batch. An Emit error aborts the stream.
type Sink[T any] interface {
	Emit(i int, v T) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc[T any] func(i int, v T) error

// Emit implements Sink.
func (f SinkFunc[T]) Emit(i int, v T) error { return f(i, v) }

// Stream runs fn(0..n-1) across the default worker pool, delivering each
// result to sink in job-index order as it becomes available. See
// StreamShard for the full contract, including cancellation.
func Stream[T any](ctx context.Context, n int, fn func(i int) (T, error), sink Sink[T]) error {
	return StreamShard(ctx, Shard{}, Workers(), n, fn, sink)
}

// StreamN is Stream with an explicit worker bound (further limited by the
// engine-wide Workers() budget, like MapN).
func StreamN[T any](ctx context.Context, workers, n int, fn func(i int) (T, error), sink Sink[T]) error {
	return StreamShard(ctx, Shard{}, workers, n, fn, sink)
}

// StreamShardCached is StreamShard with a read-through cache wrapped
// around the job function: before job i runs, lookup(i) is consulted —
// a hit serves the cached value and skips run(i) entirely; a miss runs
// the job and, once the result is emitted into the ordered stream,
// save(i, v) records it. Either hook may be nil (no lookup / no
// recording). The contract:
//
//   - lookup runs on the worker goroutines (concurrently, like run), so
//     it must be safe for concurrent use; save runs on the streaming
//     goroutine only, in ascending emit order, just before sink.Emit —
//     a crash leaves the cache holding exactly the emitted prefix.
//   - save is called only for values run produced, never for cache hits
//     (re-recording a hit would be a wasted write at best).
//   - a lookup or save error aborts the stream like a job failure: a
//     corrupt cache entry must surface as an error, not as a silently
//     recomputed — or worse, wrong — value.
//
// The delivery order and byte-for-byte output of a fully-cached, partly
// cached and uncached stream are identical, which is what lets a
// results store serve repeated sweeps without breaking the merged-file
// byte-identity contract.
func StreamShardCached[T any](ctx context.Context, shard Shard, workers, n int,
	lookup func(i int) (T, bool, error), run func(i int) (T, error),
	save func(i int, v T) error, sink Sink[T]) error {
	if lookup == nil && save == nil {
		return StreamShard(ctx, shard, workers, n, run, sink)
	}
	if n <= 0 {
		return nil
	}
	// fresh[i] marks results produced by run (vs served by lookup). A
	// worker writes its own index before the result enters the delivery
	// channel and the streaming goroutine reads it after, so the channel
	// orders the accesses.
	fresh := make([]bool, n)
	fn := run
	if lookup != nil {
		fn = func(i int) (T, error) {
			v, ok, err := lookup(i)
			if err != nil {
				var zero T
				return zero, err
			}
			if ok {
				return v, nil
			}
			v, err = run(i)
			if err == nil {
				fresh[i] = true
			}
			return v, err
		}
	} else {
		fn = func(i int) (T, error) {
			v, err := run(i)
			if err == nil {
				fresh[i] = true
			}
			return v, err
		}
	}
	out := sink
	if save != nil {
		out = SinkFunc[T](func(i int, v T) error {
			if fresh[i] {
				if err := save(i, v); err != nil {
					return err
				}
			}
			return sink.Emit(i, v)
		})
	}
	return StreamShard(ctx, shard, workers, n, fn, out)
}

// StreamShard runs this shard's subset of the jobs fn(0..n-1) across at
// most workers goroutines and streams the results to sink. The contract
// extends MapN's determinism to incremental delivery:
//
//   - sink.Emit(i, v) is called in ascending i, only for indices the
//     shard owns, as soon as all owned predecessors have been emitted —
//     a slow job blocks delivery (not execution) of later jobs, so the
//     emitted prefix at any moment is exactly what a serial run would
//     have produced so far.
//   - on failure the error of the lowest-indexed failing owned job is
//     returned and no result at or beyond that index is emitted; the
//     serial path additionally stops launching jobs at the failure, and
//     the parallel path skips jobs beyond the lowest known failure.
//   - a sink error aborts the stream and is returned as-is.
//
// Cancelling ctx is a graceful drain, not an abort: no new jobs launch,
// jobs already executing run to completion, and every completed result
// whose predecessors completed is still emitted (and therefore reaches
// any save hook / store sink) before ctx.Err() is returned. A stream cut
// short by cancellation thus leaves behind exactly the prefix-consistent
// output a shorter batch would have produced — the property that lets a
// killed sweep resume warm. A nil ctx means "never cancelled".
func StreamShard[T any](ctx context.Context, shard Shard, workers, n int, fn func(i int) (T, error), sink Sink[T]) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := shard.Validate(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	// owned is the number of jobs this shard runs; job j of the shard has
	// global index shard.Index + j*shard.Count.
	owned := n
	index := func(j int) int { return j }
	if !shard.All() {
		owned = (n - shard.Index + shard.Count - 1) / shard.Count
		index = func(j int) int { return shard.Index + j*shard.Count }
	}
	if owned <= 0 {
		return nil
	}
	if workers > owned {
		workers = owned
	}
	if workers > 1 {
		granted := reserve(workers)
		if granted <= 1 {
			active.Add(int64(-granted))
			workers = 1
		} else {
			workers = granted
		}
	}
	if workers <= 1 {
		for j := 0; j < owned; j++ {
			// Check between jobs, never mid-job: a cancelled serial
			// stream still finishes (and emits) the job it was running.
			if err := ctx.Err(); err != nil {
				return err
			}
			i := index(j)
			v, err := fn(i)
			if err != nil {
				return err
			}
			if err := sink.Emit(i, v); err != nil {
				return err
			}
		}
		return nil
	}
	defer active.Add(int64(-workers))

	type slot struct {
		j   int
		v   T
		err error
	}
	done := make(chan slot, workers)
	var next atomic.Int64
	// failed tracks the lowest failing shard-local job seen so far; jobs
	// beyond it are skipped, mirroring MapN.
	var failed atomic.Int64
	failed.Store(int64(owned))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				// A cancelled context stops workers from picking up new
				// jobs; in-flight fn calls below drain to completion.
				if j >= owned || int64(j) > failed.Load() || ctx.Err() != nil {
					return
				}
				v, err := fn(index(j))
				if err != nil {
					for {
						f := failed.Load()
						if int64(j) >= f || failed.CompareAndSwap(f, int64(j)) {
							break
						}
					}
				}
				done <- slot{j: j, v: v, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Fold completions back into shard-local order, emitting the
	// contiguous prefix as it forms. pending buffers out-of-order
	// arrivals; firstErr remembers the lowest-indexed failure.
	pending := make(map[int]slot)
	emit := 0
	var firstErr error
	errAt := owned
	var sinkErr error
	for s := range done {
		if s.err != nil {
			if s.j < errAt {
				errAt = s.j
				firstErr = s.err
			}
			continue
		}
		if sinkErr != nil {
			continue // drain remaining completions
		}
		pending[s.j] = s
		for {
			p, ok := pending[emit]
			if !ok || emit >= errAt {
				break
			}
			delete(pending, emit)
			if err := sink.Emit(index(emit), p.v); err != nil {
				sinkErr = err
				// Results beyond the failed emission are useless; mark
				// the failure so workers stop picking up new jobs
				// (mirroring a job failure) instead of finishing the
				// batch for nothing.
				for {
					f := failed.Load()
					if int64(emit) >= f || failed.CompareAndSwap(f, int64(emit)) {
						break
					}
				}
				break
			}
			emit++
		}
	}
	// A sink failure happened strictly below errAt (emission never reaches
	// the failure index), so it is the lower-indexed abort and wins.
	if sinkErr != nil {
		return sinkErr
	}
	if firstErr != nil {
		return firstErr
	}
	// All completed results were emitted; if the stream stopped short of
	// the full batch it was the context, and the caller must see that a
	// prefix — not the whole sweep — was delivered.
	if err := ctx.Err(); err != nil && emit < owned {
		return err
	}
	return nil
}
