package exp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapNOrdering(t *testing.T) {
	SetWorkers(16)
	defer SetWorkers(0)
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := MapN(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNEmpty(t *testing.T) {
	out, err := MapN(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

func TestMapNDeterministicError(t *testing.T) {
	// The lowest-indexed failure must win regardless of worker count or
	// scheduling.
	fail := func(i int) (int, error) {
		if i == 7 || i == 23 || i == 3 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	want := "job 3 failed"
	SetWorkers(8)
	defer SetWorkers(0)
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 10; trial++ {
			_, err := MapN(workers, 50, fail)
			if err == nil || err.Error() != want {
				t.Fatalf("workers=%d: err = %v, want %q", workers, err, want)
			}
		}
	}
}

func TestMapNBoundedWorkers(t *testing.T) {
	// Budget (8) above the requested width (3): the explicit bound must
	// still hold.
	SetWorkers(8)
	defer SetWorkers(0)
	var cur, peak atomic.Int64
	_, err := MapN(3, 64, func(i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent jobs, want <= 3", p)
	}
}

func TestNestedMapSharesBudget(t *testing.T) {
	// A batch nested inside another batch's worker must draw from the
	// same engine-wide budget: with Workers()=4, an outer 4-wide batch
	// whose jobs each fan out again must never run more than 4 inner
	// jobs concurrently (it would be 16 if nesting multiplied).
	SetWorkers(4)
	defer SetWorkers(0)
	var cur, peak atomic.Int64
	_, err := MapN(4, 8, func(int) (int, error) {
		inner, err := MapN(4, 8, func(j int) (int, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			defer cur.Add(-1)
			return j, nil
		})
		if err != nil {
			return 0, err
		}
		return len(inner), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent inner jobs, want <= 4 (shared budget)", p)
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(5)
	if w := Workers(); w != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", w)
	}
	SetWorkers(0)
	if w := Workers(); w < 1 {
		t.Fatalf("Workers() = %d after reset, want >= 1", w)
	}
}

func TestPair(t *testing.T) {
	defer SetWorkers(0)
	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		a, b, err := Pair(
			func() (int, error) { return 11, nil },
			func() (string, error) { return "x", nil },
		)
		if err != nil || a != 11 || b != "x" {
			t.Fatalf("workers=%d: a=%d b=%q err=%v", workers, a, b, err)
		}
		wantErr := errors.New("first")
		_, _, err = Pair(
			func() (int, error) { return 0, wantErr },
			func() (string, error) { return "", errors.New("second") },
		)
		if err == nil || err.Error() != "first" {
			t.Fatalf("workers=%d: error priority: got %v, want first", workers, err)
		}
	}
}
