package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// collect gathers emitted (index, value) pairs in delivery order.
type collect struct {
	idx  []int
	vals []int
}

func (c *collect) Emit(i, v int) error {
	c.idx = append(c.idx, i)
	c.vals = append(c.vals, v)
	return nil
}

// TestStreamShardCachedServesHits checks the core read-through contract:
// cached indices never run, fresh indices run exactly once and are
// saved, and the emitted stream is identical either way.
func TestStreamShardCachedServesHits(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 20
			cache := map[int]int{3: 103, 0: 100, 19: 119}
			var mu sync.Mutex
			saved := map[int]int{}
			var ran atomic.Int64
			sink := &collect{}
			err := StreamShardCached(context.Background(), Shard{}, workers, n,
				func(i int) (int, bool, error) {
					v, ok := cache[i]
					return v, ok, nil
				},
				func(i int) (int, error) {
					ran.Add(1)
					return 100 + i, nil
				},
				func(i, v int) error {
					mu.Lock()
					saved[i] = v
					mu.Unlock()
					return nil
				},
				sink)
			if err != nil {
				t.Fatal(err)
			}
			if got := int(ran.Load()); got != n-len(cache) {
				t.Errorf("ran %d jobs, want %d", got, n-len(cache))
			}
			if len(saved) != n-len(cache) {
				t.Errorf("saved %d results, want %d", len(saved), n-len(cache))
			}
			for i := range cache {
				if _, resaved := saved[i]; resaved {
					t.Errorf("cache hit %d was re-saved", i)
				}
			}
			for i := 0; i < n; i++ {
				if sink.idx[i] != i || sink.vals[i] != 100+i {
					t.Fatalf("row %d = (%d, %d)", i, sink.idx[i], sink.vals[i])
				}
			}
		})
	}
}

// TestStreamShardCachedNilHooks checks the pass-through cases.
func TestStreamShardCachedNilHooks(t *testing.T) {
	sink := &collect{}
	if err := StreamShardCached(context.Background(), Shard{}, 2, 5, nil, func(i int) (int, error) { return i, nil }, nil, sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.vals) != 5 {
		t.Fatalf("emitted %d rows", len(sink.vals))
	}

	// save without lookup: everything is fresh and everything is saved.
	saved := 0
	sink2 := &collect{}
	err := StreamShardCached(context.Background(), Shard{}, 1, 4, nil,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error { saved++; return nil }, sink2)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 4 {
		t.Errorf("saved %d rows, want 4", saved)
	}
}

// TestStreamShardCachedLookupError checks that a failing lookup aborts
// the stream like a job failure — a corrupt cache entry must not be
// silently recomputed.
func TestStreamShardCachedLookupError(t *testing.T) {
	bad := errors.New("integrity: checksum mismatch")
	err := StreamShardCached(context.Background(), Shard{}, 1, 5,
		func(i int) (int, bool, error) {
			if i == 2 {
				return 0, false, bad
			}
			return 0, false, nil
		},
		func(i int) (int, error) { return i, nil },
		nil, &collect{})
	if !errors.Is(err, bad) {
		t.Fatalf("lookup error not surfaced: %v", err)
	}
}

// TestStreamShardCachedSaveError checks that a failing save aborts the
// stream.
func TestStreamShardCachedSaveError(t *testing.T) {
	err := StreamShardCached(context.Background(), Shard{}, 1, 5, nil,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 1 {
				return errors.New("disk full")
			}
			return nil
		}, &collect{})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("save error not surfaced: %v", err)
	}
}

// TestStreamShardCachedSharded checks the cache composes with shard
// selection: only owned indices are looked up, run, or emitted.
func TestStreamShardCachedSharded(t *testing.T) {
	const n = 10
	shard := Shard{Index: 1, Count: 3}
	sink := &collect{}
	var looked []int
	err := StreamShardCached(context.Background(), shard, 1, n,
		func(i int) (int, bool, error) {
			looked = append(looked, i)
			return 0, false, nil
		},
		func(i int) (int, error) { return i, nil },
		nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range append(append([]int{}, looked...), sink.idx...) {
		if !shard.Owns(i) {
			t.Errorf("index %d not owned by shard %s", i, shard)
		}
	}
	if len(sink.idx) != 3 { // 1, 4, 7
		t.Errorf("emitted %d rows, want 3", len(sink.idx))
	}
}
