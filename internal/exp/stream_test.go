package exp_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rrbus/internal/exp"
)

func TestStreamOrderedDelivery(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 3, 8} {
		var got []int
		err := exp.StreamN(context.Background(), workers, n, func(i int) (int, error) {
			// Finish out of submission order to force the dispatcher to
			// buffer and reorder.
			time.Sleep(time.Duration((n-i)%5) * time.Millisecond)
			return i * i, nil
		}, exp.SinkFunc[int](func(i, v int) error {
			if v != i*i {
				t.Errorf("workers=%d: job %d delivered value %d", workers, i, v)
			}
			got = append(got, i)
			return nil
		}))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), n)
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("workers=%d: emission order %v not ascending", workers, got)
			}
		}
	}
}

func TestStreamErrorSemantics(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var emitted []int
		err := exp.StreamN(context.Background(), workers, 20, func(i int) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			return i, nil
		}, exp.SinkFunc[int](func(i, v int) error {
			emitted = append(emitted, i)
			return nil
		}))
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		for _, i := range emitted {
			if i >= 7 {
				t.Errorf("workers=%d: emitted job %d at or beyond the failure", workers, i)
			}
		}
	}
}

func TestStreamSinkErrorAborts(t *testing.T) {
	abort := errors.New("sink full")
	for _, workers := range []int{1, 4} {
		count := 0
		err := exp.StreamN(context.Background(), workers, 50, func(i int) (int, error) { return i, nil },
			exp.SinkFunc[int](func(i, v int) error {
				count++
				if i == 5 {
					return abort
				}
				return nil
			}))
		if !errors.Is(err, abort) {
			t.Fatalf("workers=%d: err = %v, want sink error", workers, err)
		}
		if count != 6 {
			t.Errorf("workers=%d: sink saw %d emissions, want 6 (0..5)", workers, count)
		}
	}
}

func TestShardOwnership(t *testing.T) {
	const n = 23
	seen := map[int]int{}
	for idx := 0; idx < 3; idx++ {
		shard := exp.Shard{Index: idx, Count: 3}
		err := exp.StreamShard(context.Background(), shard, 4, n, func(i int) (int, error) { return i, nil },
			exp.SinkFunc[int](func(i, v int) error {
				if !shard.Owns(i) {
					t.Errorf("shard %v emitted foreign job %d", shard, i)
				}
				seen[i]++
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Errorf("job %d ran %d times across shards, want exactly once", i, seen[i])
		}
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want exp.Shard
		ok   bool
	}{
		{"", exp.Shard{}, true},
		{"0/1", exp.Shard{Index: 0, Count: 1}, true},
		{"0/2", exp.Shard{Index: 0, Count: 2}, true},
		{"1/2", exp.Shard{Index: 1, Count: 2}, true},
		{"3/8", exp.Shard{Index: 3, Count: 8}, true},
		{"2/2", exp.Shard{}, false},
		{"1/1", exp.Shard{}, false},
		{"-1/2", exp.Shard{}, false},
		{"1", exp.Shard{}, false},
		{"a/b", exp.Shard{}, false},
		{"1/0", exp.Shard{}, false},
	} {
		got, err := exp.ParseShard(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseShard(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestJSONLShardMergeByteIdentical is the engine-level half of the
// acceptance criterion: streaming a batch as 2 shards into JSONL and
// merging reproduces the unsharded file byte for byte.
func TestJSONLShardMergeByteIdentical(t *testing.T) {
	const n = 17
	type row struct {
		K     int     `json:"k"`
		Value float64 `json:"value"`
	}
	run := func(shard exp.Shard) string {
		var buf bytes.Buffer
		sink := exp.NewJSONLSink[row](&buf)
		err := exp.StreamShard(context.Background(), shard, 4, n, func(i int) (row, error) {
			return row{K: i + 1, Value: float64(i) * 1.5}, nil
		}, sink)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	full := run(exp.Shard{})
	s0 := run(exp.Shard{Index: 0, Count: 2})
	s1 := run(exp.Shard{Index: 1, Count: 2})

	var merged bytes.Buffer
	if err := exp.MergeJSONL(&merged, strings.NewReader(s0), strings.NewReader(s1)); err != nil {
		t.Fatal(err)
	}
	if merged.String() != full {
		t.Errorf("merged shards differ from unsharded run:\n--- full ---\n%s--- merged ---\n%s", full, merged.String())
	}

	idx, vals, err := exp.ReadJSONL[row](strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != n || len(vals) != n {
		t.Fatalf("ReadJSONL returned %d rows, want %d", len(idx), n)
	}
	for i := range idx {
		if idx[i] != i || vals[i].K != i+1 {
			t.Fatalf("row %d decoded as idx=%d k=%d", i, idx[i], vals[i].K)
		}
	}
}

func TestMergeJSONLRejectsDuplicates(t *testing.T) {
	a := "{\"i\":0,\"v\":1}\n{\"i\":2,\"v\":1}\n"
	b := "{\"i\":2,\"v\":1}\n"
	var out bytes.Buffer
	if err := exp.MergeJSONL(&out, strings.NewReader(a), strings.NewReader(b)); err == nil {
		t.Fatal("merge accepted duplicate index 2")
	}
}
