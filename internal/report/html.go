package report

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strconv"
	"strings"

	"rrbus/internal/stats"
)

// HTMLBackend encodes a Document as one self-contained HTML file: no
// external assets, charts as inline SVG (timelines render as Gantt
// charts, sweeps and histograms as bar/line charts). The output is
// XML-well-formed (void elements self-closed, all text escaped), which
// the backend tests verify with encoding/xml at full strictness.
type HTMLBackend struct{}

// Name implements Backend.
func (HTMLBackend) Name() string { return "html" }

const htmlStyle = `body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;padding:0 1rem;color:#1a1a2e;background:#fcfcfd}
h1{font-size:1.3rem;border-bottom:2px solid #1a1a2e;padding-bottom:.3rem}
h2{font-size:1.05rem;margin-top:1.5rem}
table{border-collapse:collapse;margin:1rem 0;font-size:.9rem}
th,td{border:1px solid #c8c8d0;padding:.25rem .6rem;text-align:left}
td.num{text-align:right;font-variant-numeric:tabular-nums}
td.note{color:#a33;font-size:.85rem}
thead th{background:#ecedf2}
figure{margin:1rem 0}
figcaption{font-size:.85rem;color:#555}
dl{display:grid;grid-template-columns:max-content auto;gap:.2rem 1rem}
dt{font-weight:600}
svg text{font-family:ui-monospace,monospace;font-size:10px;fill:#333}
.wait{fill:#e4b363}
.busy{fill:#4a6fa5}
.bar{fill:#4a6fa5}
.s0{stroke:#4a6fa5}
.s1{stroke:#b3543e}
.s2{stroke:#3e8e5a}
svg text.t0{fill:#4a6fa5}
svg text.t1{fill:#b3543e}
svg text.t2{fill:#3e8e5a}`

// seriesColors must stay in sync with the .sN stroke / text.tN fill
// class pairs.
const seriesColors = 3

// Render implements Backend.
func (HTMLBackend) Render(w io.Writer, d *Document) error {
	var b strings.Builder
	title := d.Title
	if title == "" {
		title = "rrbus report"
	}
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/><title>")
	b.WriteString(esc(title))
	b.WriteString("</title><style>\n")
	b.WriteString(htmlStyle)
	b.WriteString("\n</style></head>\n<body>\n")
	for _, blk := range d.Blocks {
		renderBlockHTML(&b, blk)
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func esc(s string) string { return html.EscapeString(s) }

func fnum(f float64) string { return strconv.FormatFloat(f, 'f', 1, 64) }

func renderBlockHTML(b *strings.Builder, blk Block) {
	switch t := blk.(type) {
	case Heading:
		lvl := "h1"
		if t.Level >= 2 {
			lvl = "h2"
		}
		fmt.Fprintf(b, "<%s>%s</%s>\n", lvl, esc(t.Text), lvl)
	case Paragraph:
		if t.Text != "" {
			fmt.Fprintf(b, "<p>%s</p>\n", esc(t.Text))
		}
	case Spacer:
		// spacing belongs to the stylesheet
	case Table:
		renderTableHTML(b, t)
	case Series:
		renderSeriesHTML(b, t)
	case Timeline:
		renderTimelineHTML(b, t)
	case Histogram:
		renderHistogramHTML(b, t)
	case Bounds:
		renderBoundsHTML(b, t)
	}
}

func renderTableHTML(b *strings.Builder, t Table) {
	b.WriteString("<table><thead><tr>")
	for _, c := range t.Columns {
		fmt.Fprintf(b, "<th>%s</th>", esc(c.Label))
	}
	b.WriteString("</tr></thead><tbody>\n")
	for _, row := range t.Rows {
		b.WriteString("<tr>")
		for i, cell := range row.Cells {
			if i >= len(t.Columns) {
				break
			}
			class := "num"
			if cell.K == KindString {
				class = "txt"
			}
			fmt.Fprintf(b, "<td class=\"%s\">%s</td>", class,
				esc(strings.TrimSpace(formatCell(t.Columns[i].Format, cell))))
		}
		if row.Note != "" {
			fmt.Fprintf(b, "<td class=\"note\">%s</td>", esc(strings.TrimSpace(row.Note)))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody></table>\n")
}

// renderSeriesHTML draws the sweep as an inline SVG: one polyline per
// integer-valued line, scaled to the common maximum, with a data table
// nowhere — the JSON backend is the machine path.
func renderSeriesHTML(b *strings.Builder, s Series) {
	const w, h, padL, padB, padT = 640, 220, 48, 24, 10
	maxV := int64(1)
	var lines []int // indices of chartable (integer) lines
	for li, line := range s.Lines {
		integral := len(line.Values) > 0
		for _, v := range line.Values {
			if v.K != KindInt {
				integral = false
				break
			}
			if v.Int > maxV {
				maxV = v.Int
			}
		}
		if integral {
			lines = append(lines, li)
		}
	}
	b.WriteString("<figure class=\"series\">")
	fmt.Fprintf(b, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\">", w, h, w, h)
	// axes
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#888\"/>", padL, h-padB, w-8, h-padB)
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#888\"/>", padL, padT, padL, h-padB)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%d</text>", padL-4, padT+8, maxV)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">0</text>", padL-4, h-padB)
	if n := len(s.X); n > 0 {
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\">%s=%d</text>", padL, h-6, esc(s.XKey), s.X[0])
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s=%d</text>", w-8, h-6, esc(s.XKey), s.X[n-1])
	}
	plotW := float64(w - padL - 16)
	plotH := float64(h - padB - padT)
	for ci, li := range lines {
		line := s.Lines[li]
		var pts strings.Builder
		for i, v := range line.Values {
			x := float64(padL)
			if len(line.Values) > 1 {
				x += plotW * float64(i) / float64(len(line.Values)-1)
			}
			y := float64(h-padB) - plotH*float64(v.Int)/float64(maxV)
			if i > 0 {
				pts.WriteByte(' ')
			}
			pts.WriteString(fnum(x) + "," + fnum(y))
		}
		fmt.Fprintf(b, "<polyline class=\"s%d\" fill=\"none\" stroke-width=\"1.5\" points=\"%s\"/>", ci%seriesColors, pts.String())
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" class=\"t%d\">%s</text>", w-120, padT+12+14*ci, ci%seriesColors, esc(line.Key))
	}
	b.WriteString("</svg>")
	for _, f := range s.Footer {
		fmt.Fprintf(b, "<figcaption>%s</figcaption>", esc(f))
	}
	b.WriteString("</figure>\n")
}

// renderTimelineHTML draws the recorded bus-event window as an SVG Gantt
// chart: one row per port, a light rect while a request waits and a dark
// rect while it occupies the bus.
func renderTimelineHTML(b *strings.Builder, t Timeline) {
	if t.To <= t.From || t.NPorts <= 0 {
		return
	}
	const rowH, padL, padT = 22, 52, 16
	cycles := int(t.To - t.From)
	pxPerCyc := 720.0 / float64(cycles)
	if pxPerCyc > 28 {
		pxPerCyc = 28
	}
	if pxPerCyc < 4 {
		pxPerCyc = 4
	}
	w := padL + int(pxPerCyc*float64(cycles)) + 8
	h := padT + rowH*t.NPorts + 18
	xOf := func(cyc uint64) float64 {
		if cyc < t.From {
			cyc = t.From
		}
		if cyc > t.To {
			cyc = t.To
		}
		return float64(padL) + pxPerCyc*float64(cyc-t.From)
	}
	b.WriteString("<figure class=\"timeline\">")
	fmt.Fprintf(b, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\">", w, h, w, h)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\">cycles %d..%d</text>", padL, 10, t.From, t.To)
	for p := 0; p < t.NPorts; p++ {
		y := padT + rowH*p
		fmt.Fprintf(b, "<text x=\"4\" y=\"%d\">port%d</text>", y+14, p)
		fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#ddd\"/>", padL, y+rowH-2, w-8, y+rowH-2)
	}
	for _, e := range t.Events {
		if e.Port < 0 || e.Port >= t.NPorts {
			continue
		}
		end := e.Grant + uint64(e.Occupancy)
		if end <= t.From || e.Ready >= t.To {
			continue
		}
		y := padT + rowH*e.Port + 2
		if e.Grant > e.Ready {
			fmt.Fprintf(b, "<rect class=\"wait\" x=\"%s\" y=\"%d\" width=\"%s\" height=\"%d\"/>",
				fnum(xOf(e.Ready)), y, fnum(xOf(e.Grant)-xOf(e.Ready)), rowH-8)
		}
		fmt.Fprintf(b, "<rect class=\"busy\" x=\"%s\" y=\"%d\" width=\"%s\" height=\"%d\"/>",
			fnum(xOf(e.Grant)), y, fnum(xOf(end)-xOf(e.Grant)), rowH-8)
	}
	b.WriteString("</svg>")
	fmt.Fprintf(b, "<figcaption>δ=%d γ=%d (amber: waiting, blue: bus busy)</figcaption>", t.Delta, t.Gamma)
	b.WriteString("</figure>\n")
}

func renderHistogramHTML(b *strings.Builder, hg Histogram) {
	fmt.Fprintf(b, "<p><strong>%s</strong>: ubdm(observed max)=%d, actual ubd=%d, mode γ=%d (%s%% of requests)</p>\n",
		esc(hg.Arch), hg.UBDm, hg.ActualUBD, hg.ModeGamma, fnum(hg.ModeFrac*100))
	h := stats.FromDense(hg.Counts)
	total := h.Total()
	if total == 0 {
		return
	}
	values := h.Values()
	const barH, padL, padT = 14, 44, 6
	width, height := 560, padT+barH*len(values)+6
	_, maxFrac, _ := h.Mode()
	b.WriteString("<figure class=\"hist\">")
	fmt.Fprintf(b, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\">", width, height, width, height)
	for i, v := range values {
		frac := float64(h.Count(v)) / float64(total)
		y := padT + barH*i
		bw := 0.0
		if maxFrac > 0 {
			bw = 380 * frac / maxFrac
		}
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">γ=%d</text>", padL-4, y+barH-4, v)
		fmt.Fprintf(b, "<rect class=\"bar\" x=\"%d\" y=\"%d\" width=\"%s\" height=\"%d\"/>", padL, y+2, fnum(bw), barH-4)
		fmt.Fprintf(b, "<text x=\"%s\" y=\"%d\">%d (%s%%)</text>", fnum(float64(padL)+bw+4), y+barH-4, h.Count(v), fnum(frac*100))
	}
	b.WriteString("</svg></figure>\n")
}

func renderBoundsHTML(b *strings.Builder, d Bounds) {
	b.WriteString("<dl>")
	pair := func(k, v string) { fmt.Fprintf(b, "<dt>%s</dt><dd>%s</dd>", esc(k), esc(v)) }
	pair("platform", fmt.Sprintf("%s (%d cores, lbus=%d)", d.Platform, d.Cores, d.LBus))
	pair("access type", d.AccessType)
	pair("actual ubd (Eq.1)", fmt.Sprintf("%d cycles", d.ActualUBD))
	if d.Err != "" {
		pair("derivation", "FAILED: "+d.Err)
	} else if r := d.Res; r != nil {
		pair("derived ubdm", fmt.Sprintf("%d cycles", r.UBDm))
		pair("saw-tooth period", fmt.Sprintf("%d nop steps", r.PeriodK))
		pair("δnop", fmt.Sprintf("%.3f cycles", r.DeltaNop))
		var ms []string
		for _, m := range sortedKeys(r.Methods) {
			ms = append(ms, fmt.Sprintf("%s=%d", m, r.Methods[m]))
		}
		pair("detection methods", strings.Join(ms, " "))
		pair("confidence", fmt.Sprintf("%.2f (utilization %.0f%% ok=%v, methods agree=%v, periods=%.1f)",
			r.Confidence, r.MinUtilization*100, r.UtilizationOK, r.MethodsAgree, r.PeriodsObserved))
	}
	b.WriteString("</dl>\n")
	if d.Err == "" && d.Res != nil {
		for _, n := range d.Res.Notes {
			fmt.Fprintf(b, "<p class=\"note\">note: %s</p>\n", esc(n))
		}
		renderSlowdownsSVG(b, d.Res)
	}
}

// renderSlowdownsSVG draws the derivation's per-request slowdown series
// (the saw-tooth the period was read from) as a small line chart.
func renderSlowdownsSVG(b *strings.Builder, r *BoundsResult) {
	d := r.Slowdowns
	if len(d) < 2 {
		return
	}
	lo, hi := d[0], d[0]
	for _, v := range d {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return
	}
	const w, h, padL, padB, padT = 640, 180, 48, 22, 8
	plotW, plotH := float64(w-padL-12), float64(h-padB-padT)
	b.WriteString("<figure class=\"sawtooth\">")
	fmt.Fprintf(b, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" role=\"img\">", w, h, w, h)
	fmt.Fprintf(b, "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#888\"/>", padL, h-padB, w-8, h-padB)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>", padL-4, padT+8, fnum(hi))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>", padL-4, h-padB, fnum(lo))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\">k=%d</text>", padL, h-6, r.KMin)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">k=%d</text>", w-8, h-6, r.KMin+len(d)-1)
	var pts strings.Builder
	for i, v := range d {
		x := float64(padL) + plotW*float64(i)/float64(len(d)-1)
		y := float64(h-padB) - plotH*(v-lo)/(hi-lo)
		if i > 0 {
			pts.WriteByte(' ')
		}
		pts.WriteString(fnum(x) + "," + fnum(y))
	}
	fmt.Fprintf(b, "<polyline class=\"s0\" fill=\"none\" stroke-width=\"1.5\" points=\"%s\"/>", pts.String())
	b.WriteString("</svg><figcaption>per-request slowdown vs k</figcaption></figure>\n")
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
