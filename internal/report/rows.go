package report

import (
	"fmt"
	"strings"

	"rrbus/internal/stats"
)

// GammaRow is one δ→γ pair with the simulator measurement and the Eq. 2
// prediction (Figs. 3 and 4).
type GammaRow struct {
	Delta         int
	GammaSim      int
	GammaAnalytic int
}

// RenderGammaRows formats GammaRow tables.
func RenderGammaRows(rows []GammaRow) string {
	var b strings.Builder
	b.WriteString("delta  gamma(sim)  gamma(eq2)\n")
	for _, r := range rows {
		mark := ""
		if r.GammaSim != r.GammaAnalytic {
			mark = "  <- mismatch"
		}
		fmt.Fprintf(&b, "%5d  %10d  %10d%s\n", r.Delta, r.GammaSim, r.GammaAnalytic, mark)
	}
	return b.String()
}

// TimelineFig is one rendered bus timeline (Figs. 2 and 5): the scua's
// steady-state request at injection time δ and the Gantt chart around it.
type TimelineFig struct {
	K        int
	Delta    int
	Gamma    int
	Timeline string
}

// Fig6aData is the Fig. 6(a) histogram pair: how many contenders are
// ready when the scua in core 0 submits a bus request, for real-ish EEMBC
// workloads versus four rsk.
type Fig6aData struct {
	// EEMBCFrac[i] is the average fraction of scua requests finding i
	// ready contenders across the random workloads (dark bars).
	EEMBCFrac []float64
	// RSKFrac[i] is the same for the 4×rsk workload (light bars).
	RSKFrac []float64
	// WorkloadNames lists the random task sets used ("a2time+canrdr+...").
	WorkloadNames []string
}

// Render formats the Fig. 6(a) histograms side by side.
func (r *Fig6aData) Render() string {
	var b strings.Builder
	b.WriteString("ready-contenders  EEMBC-workloads  4xRSK\n")
	for i := range r.EEMBCFrac {
		fmt.Fprintf(&b, "%16d  %14.1f%%  %5.1f%%\n", i, r.EEMBCFrac[i]*100, r.RSKFrac[i]*100)
	}
	return b.String()
}

// Fig6bData is the Fig. 6(b) contention-delay histogram for one
// architecture.
type Fig6bData struct {
	Arch string
	// Hist is the per-request γ histogram of the rsk scua.
	Hist *stats.Hist
	// UBDm is the largest observed delay (the naive measured bound).
	UBDm int
	// ModeGamma is the dominant delay and ModeFrac its share (the paper
	// reports 98%).
	ModeGamma int
	ModeFrac  float64
	// ActualUBD is Eq. 1 ground truth.
	ActualUBD int
	// SimCycles is the full simulated length of the run (warmup +
	// measurement window), used by the throughput benchmarks to report
	// simcycles/s against the run's wall time.
	SimCycles uint64
}

// Render formats one Fig. 6(b) histogram.
func (r Fig6bData) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ubdm(observed max)=%d actual ubd=%d mode γ=%d (%.1f%% of requests)\n",
		r.Arch, r.UBDm, r.ActualUBD, r.ModeGamma, r.ModeFrac*100)
	b.WriteString(r.Hist.String())
	return b.String()
}

// SweepPoint is one k of a Fig. 7 sweep.
type SweepPoint struct {
	K int
	// Slowdown is ExecTime_contended - ExecTime_isolation in cycles.
	Slowdown int64
	// Utilization is the contended run's bus utilization.
	Utilization float64
}

// PeaksOf returns the k positions of strict interior local maxima of the
// slowdown (edges are ambiguous).
func PeaksOf(pts []SweepPoint) []int {
	var out []int
	for i := 1; i < len(pts)-1; i++ {
		cur := pts[i].Slowdown
		if pts[i-1].Slowdown < cur && pts[i+1].Slowdown < cur {
			out = append(out, pts[i].K)
		}
	}
	return out
}

// RenderSweep formats one slowdown sweep as an aligned column with bars.
func RenderSweep(pts []SweepPoint) string {
	var b strings.Builder
	b.WriteString("  k   slowdown   util\n")
	maxS := int64(1)
	for _, p := range pts {
		if p.Slowdown > maxS {
			maxS = p.Slowdown
		}
	}
	for _, p := range pts {
		bar := strings.Repeat("#", int(p.Slowdown*30/maxS))
		fmt.Fprintf(&b, "%3d  %9d  %4.1f%%  %s\n", p.K, p.Slowdown, p.Utilization*100, bar)
	}
	return b.String()
}

// Fig7aData is the Fig. 7(a) pair of load sweeps.
type Fig7aData struct {
	Ref, Var []SweepPoint
	// RefPeaks and VarPeaks are the k positions of the saw-tooth maxima
	// (the paper: 27/54 for ref, 24/51 for var, both period 27).
	RefPeaks, VarPeaks []int
}

// Render formats the two sweeps as aligned columns with a bar for ref.
func (r *Fig7aData) Render() string {
	var b strings.Builder
	b.WriteString("  k  slowdown(ref)  slowdown(var)\n")
	maxS := int64(1)
	for _, p := range r.Ref {
		if p.Slowdown > maxS {
			maxS = p.Slowdown
		}
	}
	for i := range r.Ref {
		bar := strings.Repeat("#", int(r.Ref[i].Slowdown*30/maxS))
		fmt.Fprintf(&b, "%3d  %13d  %13d  %s\n", r.Ref[i].K, r.Ref[i].Slowdown, r.Var[i].Slowdown, bar)
	}
	fmt.Fprintf(&b, "ref peaks at k=%v, var peaks at k=%v\n", r.RefPeaks, r.VarPeaks)
	return b.String()
}

// Fig7bData is the Fig. 7(b) store sweep.
type Fig7bData struct {
	Points []SweepPoint
	// ZeroFromK is the first k from which the slowdown stays zero: the
	// store buffer hides all contention beyond it (paper: the first
	// period spans k ∈ [1..28]; in this simulator the tooth ends at
	// ubd + lbus - 1 because a saturated buffer frees one entry per full
	// round — see DESIGN.md).
	ZeroFromK int
}

// Render formats the store sweep.
func (r *Fig7bData) Render() string {
	var b strings.Builder
	b.WriteString("  k  slowdown(store)\n")
	maxS := int64(1)
	for _, p := range r.Points {
		if p.Slowdown > maxS {
			maxS = p.Slowdown
		}
	}
	for _, p := range r.Points {
		bar := strings.Repeat("#", int(p.Slowdown*30/maxS))
		fmt.Fprintf(&b, "%3d  %15d  %s\n", p.K, p.Slowdown, bar)
	}
	fmt.Fprintf(&b, "slowdown identically zero from k=%d (store buffer hides contention)\n", r.ZeroFromK)
	return b.String()
}

// ArbiterRow reports how the methodology behaves under one arbitration
// policy — the E9a ablation: the Eq. 3 period→ubd mapping is specific to
// round-robin.
type ArbiterRow struct {
	Arbiter string
	// ActualUBD is Eq. 1 (meaningful for RR only).
	ActualUBD int
	// DerivedUBDm is what the methodology reports; Err is the failure
	// reason when it correctly refuses.
	DerivedUBDm int
	PeriodK     int
	Err         string
	// Note interprets the outcome.
	Note string
}

// RenderArbiters formats the arbiter ablation.
func RenderArbiters(rows []ArbiterRow) string {
	var b strings.Builder
	b.WriteString("arbiter   eq1-ubd  derived  periodK  outcome\n")
	for _, r := range rows {
		out := r.Note
		if r.Err != "" {
			out = "refused: " + r.Err
		}
		fmt.Fprintf(&b, "%-9s %7d  %7d  %7d  %s\n", r.Arbiter, r.ActualUBD, r.DerivedUBDm, r.PeriodK, out)
	}
	return b.String()
}

// DeltaNopRow reports the E9b ablation: platforms where a nop costs more
// than one cycle sample the saw-tooth sparsely; period-based reading
// aliases, the model fit does not.
type DeltaNopRow struct {
	NopLatency  int
	ActualUBD   int
	DeltaNop    float64
	DerivedUBDm int
	// PeriodTimesDnop is the naive period×δnop reading that aliases when
	// δnop does not divide ubd.
	PeriodTimesDnop int
	Err             string
}

// RenderDeltaNop formats the δnop ablation.
func RenderDeltaNop(rows []DeltaNopRow) string {
	var b strings.Builder
	b.WriteString("nop-lat  actual-ubd  δnop   derived  period×δnop\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d  %10d  %5.2f  %7d  %11d", r.NopLatency, r.ActualUBD, r.DeltaNop, r.DerivedUBDm, r.PeriodTimesDnop)
		if r.Err != "" {
			fmt.Fprintf(&b, "  ERR: %s", r.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ScalingRow reports the E9c ablation: the methodology recovers Eq. 1
// across platform geometries.
type ScalingRow struct {
	Cores       int
	LBus        int
	ActualUBD   int
	DerivedUBDm int
	Err         string
}

// RenderScaling formats the scaling ablation.
func RenderScaling(rows []ScalingRow) string {
	var b strings.Builder
	b.WriteString("cores  lbus  actual-ubd  derived-ubdm\n")
	for _, r := range rows {
		mark := ""
		if r.DerivedUBDm != r.ActualUBD {
			mark = "  <- mismatch"
		}
		fmt.Fprintf(&b, "%5d  %4d  %10d  %12d%s", r.Cores, r.LBus, r.ActualUBD, r.DerivedUBDm, mark)
		if r.Err != "" {
			fmt.Fprintf(&b, "  ERR: %s", r.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
