package report

import (
	"fmt"
	"strings"

	"rrbus/internal/stats"
)

// blockText renders blocks with the text backend into a string — the
// implementation behind the legacy per-figure string helpers, so there
// is exactly one source of truth for the terminal format.
func blockText(blks ...Block) string {
	var b strings.Builder
	for _, blk := range blks {
		renderBlockText(&b, blk)
	}
	return b.String()
}

// GammaRow is one δ→γ pair with the simulator measurement and the Eq. 2
// prediction (Figs. 3 and 4).
type GammaRow struct {
	Delta         int
	GammaSim      int
	GammaAnalytic int
}

// gammaTable builds the typed δ→γ table block.
func gammaTable(rows []GammaRow) Table {
	t := Table{
		Name:   "gamma",
		Header: "delta  gamma(sim)  gamma(eq2)",
		Columns: []Column{
			{Key: "delta", Label: "delta", Format: "%5d"},
			{Key: "gamma_sim", Label: "gamma(sim)", Format: "  %10d"},
			{Key: "gamma_eq2", Label: "gamma(eq2)", Format: "  %10d"},
		},
	}
	for _, r := range rows {
		row := Row{Cells: []Value{IntV(r.Delta), IntV(r.GammaSim), IntV(r.GammaAnalytic)}}
		if r.GammaSim != r.GammaAnalytic {
			row.Note = "  <- mismatch"
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RenderGammaRows formats GammaRow tables.
func RenderGammaRows(rows []GammaRow) string { return blockText(gammaTable(rows)) }

// TimelineFig is one rendered bus timeline (Figs. 2 and 5): the scua's
// steady-state request at injection time δ and the Gantt chart around it.
type TimelineFig struct {
	K        int
	Delta    int
	Gamma    int
	Timeline string
}

// Fig6aData is the Fig. 6(a) histogram pair: how many contenders are
// ready when the scua in core 0 submits a bus request, for real-ish EEMBC
// workloads versus four rsk.
type Fig6aData struct {
	// EEMBCFrac[i] is the average fraction of scua requests finding i
	// ready contenders across the random workloads (dark bars).
	EEMBCFrac []float64
	// RSKFrac[i] is the same for the 4×rsk workload (light bars).
	RSKFrac []float64
	// WorkloadNames lists the random task sets used ("a2time+canrdr+...").
	WorkloadNames []string
}

// table builds the side-by-side ready-contender table block.
func (r *Fig6aData) table() Table {
	t := Table{
		Name:   "ready-contenders",
		Header: "ready-contenders  EEMBC-workloads  4xRSK",
		Columns: []Column{
			{Key: "ready_contenders", Label: "ready-contenders", Format: "%16d"},
			{Key: "eembc_pct", Label: "EEMBC-workloads", Format: "  %14.1f%%"},
			{Key: "rsk_pct", Label: "4xRSK", Format: "  %5.1f%%"},
		},
	}
	for i := range r.EEMBCFrac {
		t.Rows = append(t.Rows, Row{Cells: []Value{
			IntV(i), FloatV(r.EEMBCFrac[i] * 100), FloatV(r.RSKFrac[i] * 100),
		}})
	}
	return t
}

// Render formats the Fig. 6(a) histograms side by side.
func (r *Fig6aData) Render() string { return blockText(r.table()) }

// Fig6bData is the Fig. 6(b) contention-delay histogram for one
// architecture.
type Fig6bData struct {
	Arch string
	// Hist is the per-request γ histogram of the rsk scua.
	Hist *stats.Hist
	// UBDm is the largest observed delay (the naive measured bound).
	UBDm int
	// ModeGamma is the dominant delay and ModeFrac its share (the paper
	// reports 98%).
	ModeGamma int
	ModeFrac  float64
	// ActualUBD is Eq. 1 ground truth.
	ActualUBD int
	// SimCycles is the full simulated length of the run (warmup +
	// measurement window), used by the throughput benchmarks to report
	// simcycles/s against the run's wall time.
	SimCycles uint64
	// counts is the dense γ histogram the block encoding carries.
	counts []uint64
}

// histogram builds the typed distribution block.
func (r Fig6bData) histogram() Histogram {
	counts := r.counts
	if counts == nil && r.Hist != nil {
		// Hand-built rows (tests): densify the sparse histogram.
		if max, ok := r.Hist.Max(); ok {
			counts = make([]uint64, max+1)
			for _, v := range r.Hist.Values() {
				counts[v] = r.Hist.Count(v)
			}
		}
	}
	return Histogram{
		Arch:      r.Arch,
		UBDm:      r.UBDm,
		ActualUBD: r.ActualUBD,
		ModeGamma: r.ModeGamma,
		ModeFrac:  r.ModeFrac,
		SimCycles: r.SimCycles,
		Counts:    counts,
	}
}

// Render formats one Fig. 6(b) histogram.
func (r Fig6bData) Render() string { return blockText(r.histogram()) }

// SweepPoint is one k of a Fig. 7 sweep.
type SweepPoint struct {
	K int
	// Slowdown is ExecTime_contended - ExecTime_isolation in cycles.
	Slowdown int64
	// Utilization is the contended run's bus utilization.
	Utilization float64
}

// PeaksOf returns the k positions of strict interior local maxima of the
// slowdown (edges are ambiguous).
func PeaksOf(pts []SweepPoint) []int {
	var out []int
	for i := 1; i < len(pts)-1; i++ {
		cur := pts[i].Slowdown
		if pts[i-1].Slowdown < cur && pts[i+1].Slowdown < cur {
			out = append(out, pts[i].K)
		}
	}
	return out
}

// sweepSeries builds the single-sweep series block (generic Fig. 7).
func sweepSeries(pts []SweepPoint) Series {
	s := Series{
		Name:    "slowdown-sweep",
		Header:  "  k   slowdown   util",
		XKey:    "k",
		BarLine: 0,
		Lines: []SeriesLine{
			{Key: "slowdown", Format: "  %9d"},
			{Key: "util_pct", Format: "  %4.1f%%"},
		},
	}
	for _, p := range pts {
		s.X = append(s.X, p.K)
		s.Lines[0].Values = append(s.Lines[0].Values, Int64(p.Slowdown))
		s.Lines[1].Values = append(s.Lines[1].Values, FloatV(p.Utilization*100))
	}
	return s
}

// RenderSweep formats one slowdown sweep as an aligned column with bars.
func RenderSweep(pts []SweepPoint) string { return blockText(sweepSeries(pts)) }

// Fig7aData is the Fig. 7(a) pair of load sweeps.
type Fig7aData struct {
	Ref, Var []SweepPoint
	// RefPeaks and VarPeaks are the k positions of the saw-tooth maxima
	// (the paper: 27/54 for ref, 24/51 for var, both period 27).
	RefPeaks, VarPeaks []int
}

// series builds the two-architecture series block with structured peaks.
func (r *Fig7aData) series() Series {
	s := Series{
		Name:    "fig7a",
		Header:  "  k  slowdown(ref)  slowdown(var)",
		XKey:    "k",
		BarLine: 0,
		Lines: []SeriesLine{
			{Key: "ref", Format: "  %13d"},
			{Key: "var", Format: "  %13d"},
		},
		Footer: []string{fmt.Sprintf("ref peaks at k=%v, var peaks at k=%v", r.RefPeaks, r.VarPeaks)},
		Peaks:  map[string][]int{"ref": r.RefPeaks, "var": r.VarPeaks},
	}
	for i := range r.Ref {
		s.X = append(s.X, r.Ref[i].K)
		s.Lines[0].Values = append(s.Lines[0].Values, Int64(r.Ref[i].Slowdown))
		s.Lines[1].Values = append(s.Lines[1].Values, Int64(r.Var[i].Slowdown))
	}
	return s
}

// Render formats the two sweeps as aligned columns with a bar for ref.
func (r *Fig7aData) Render() string { return blockText(r.series()) }

// Fig7bData is the Fig. 7(b) store sweep.
type Fig7bData struct {
	Points []SweepPoint
	// ZeroFromK is the first k from which the slowdown stays zero: the
	// store buffer hides all contention beyond it (paper: the first
	// period spans k ∈ [1..28]; in this simulator the tooth ends at
	// ubd + lbus - 1 because a saturated buffer frees one entry per full
	// round — see DESIGN.md).
	ZeroFromK int
}

// series builds the store-sweep series block with the structured
// crossover point.
func (r *Fig7bData) series() Series {
	zero := r.ZeroFromK
	s := Series{
		Name:      "fig7b",
		Header:    "  k  slowdown(store)",
		XKey:      "k",
		BarLine:   0,
		Lines:     []SeriesLine{{Key: "store", Format: "  %15d"}},
		Footer:    []string{fmt.Sprintf("slowdown identically zero from k=%d (store buffer hides contention)", r.ZeroFromK)},
		ZeroFromK: &zero,
	}
	for _, p := range r.Points {
		s.X = append(s.X, p.K)
		s.Lines[0].Values = append(s.Lines[0].Values, Int64(p.Slowdown))
	}
	return s
}

// Render formats the store sweep.
func (r *Fig7bData) Render() string { return blockText(r.series()) }

// ArbiterRow reports how the methodology behaves under one arbitration
// policy — the E9a ablation: the Eq. 3 period→ubd mapping is specific to
// round-robin.
type ArbiterRow struct {
	Arbiter string
	// ActualUBD is Eq. 1 (meaningful for RR only).
	ActualUBD int
	// DerivedUBDm is what the methodology reports; Err is the failure
	// reason when it correctly refuses.
	DerivedUBDm int
	PeriodK     int
	Err         string
	// Note interprets the outcome.
	Note string
}

// arbitersTable builds the arbiter-ablation table block.
func arbitersTable(rows []ArbiterRow) Table {
	t := Table{
		Name:   "abl-arb",
		Header: "arbiter   eq1-ubd  derived  periodK  outcome",
		Columns: []Column{
			{Key: "arbiter", Label: "arbiter", Format: "%-9s"},
			{Key: "eq1_ubd", Label: "eq1-ubd", Format: " %7d"},
			{Key: "derived", Label: "derived", Format: "  %7d"},
			{Key: "period_k", Label: "periodK", Format: "  %7d"},
			{Key: "outcome", Label: "outcome", Format: "  %s"},
		},
	}
	for _, r := range rows {
		out := r.Note
		if r.Err != "" {
			out = "refused: " + r.Err
		}
		t.Rows = append(t.Rows, Row{Cells: []Value{
			StringV(r.Arbiter), IntV(r.ActualUBD), IntV(r.DerivedUBDm), IntV(r.PeriodK), StringV(out),
		}})
	}
	return t
}

// RenderArbiters formats the arbiter ablation.
func RenderArbiters(rows []ArbiterRow) string { return blockText(arbitersTable(rows)) }

// DeltaNopRow reports the E9b ablation: platforms where a nop costs more
// than one cycle sample the saw-tooth sparsely; period-based reading
// aliases, the model fit does not.
type DeltaNopRow struct {
	NopLatency  int
	ActualUBD   int
	DeltaNop    float64
	DerivedUBDm int
	// PeriodTimesDnop is the naive period×δnop reading that aliases when
	// δnop does not divide ubd.
	PeriodTimesDnop int
	Err             string
}

// deltaNopTable builds the δnop-ablation table block.
func deltaNopTable(rows []DeltaNopRow) Table {
	t := Table{
		Name:   "abl-dnop",
		Header: "nop-lat  actual-ubd  δnop   derived  period×δnop",
		Columns: []Column{
			{Key: "nop_latency", Label: "nop-lat", Format: "%7d"},
			{Key: "actual_ubd", Label: "actual-ubd", Format: "  %10d"},
			{Key: "delta_nop", Label: "δnop", Format: "  %5.2f"},
			{Key: "derived", Label: "derived", Format: "  %7d"},
			{Key: "period_x_dnop", Label: "period×δnop", Format: "  %11d"},
		},
	}
	for _, r := range rows {
		row := Row{Cells: []Value{
			IntV(r.NopLatency), IntV(r.ActualUBD), FloatV(r.DeltaNop), IntV(r.DerivedUBDm), IntV(r.PeriodTimesDnop),
		}}
		if r.Err != "" {
			row.Note = "  ERR: " + r.Err
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RenderDeltaNop formats the δnop ablation.
func RenderDeltaNop(rows []DeltaNopRow) string { return blockText(deltaNopTable(rows)) }

// ScalingRow reports the E9c ablation: the methodology recovers Eq. 1
// across platform geometries.
type ScalingRow struct {
	Cores       int
	LBus        int
	ActualUBD   int
	DerivedUBDm int
	Err         string
}

// scalingTable builds the geometry-ablation table block.
func scalingTable(rows []ScalingRow) Table {
	t := Table{
		Name:   "abl-scaling",
		Header: "cores  lbus  actual-ubd  derived-ubdm",
		Columns: []Column{
			{Key: "cores", Label: "cores", Format: "%5d"},
			{Key: "lbus", Label: "lbus", Format: "  %4d"},
			{Key: "actual_ubd", Label: "actual-ubd", Format: "  %10d"},
			{Key: "derived_ubdm", Label: "derived-ubdm", Format: "  %12d"},
		},
	}
	for _, r := range rows {
		row := Row{Cells: []Value{IntV(r.Cores), IntV(r.LBus), IntV(r.ActualUBD), IntV(r.DerivedUBDm)}}
		if r.DerivedUBDm != r.ActualUBD {
			row.Note = "  <- mismatch"
		}
		if r.Err != "" {
			row.Note += "  ERR: " + r.Err
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RenderScaling formats the scaling ablation.
func RenderScaling(rows []ScalingRow) string { return blockText(scalingTable(rows)) }
