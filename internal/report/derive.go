package report

import (
	"fmt"
	"strings"

	"rrbus/internal/core"
	"rrbus/internal/isa"
	"rrbus/internal/kernel"
	"rrbus/internal/scenario"
	"rrbus/internal/sim"
	"rrbus/internal/workload"
)

// Derivation is the detection half of the methodology run over one
// recorded derivation block: the δnop calibration row plus the
// isolation-paired k sweep.
type Derivation struct {
	// Cfg is the block's platform, rebuilt from its declarative spec.
	Cfg sim.Config
	// Type is the sweep's bus access type; KMin its first k.
	Type isa.Op
	KMin int
	// DeltaNop is the per-nop injection increment recovered from the
	// calibration row.
	DeltaNop float64
	// Res is the core.DeriveFromSeries outcome (may be partial when Err
	// is set); Err is the detection failure, if any.
	Res *core.Result
	Err error
}

// DerivationFrom runs the period detection over a recorded derivation
// block: jobs[0] must be the δnop calibration ("<prefix>/dnop", scua
// "nop"), jobs[1:] the isolation-paired rsk-nop sweep in ascending k.
// Everything it needs beyond the recorded numbers — the nop count of the
// calibration kernel, the platform's Eq. 1 ground truth — is rebuilt
// from the declarative job specs; no simulation runs.
func DerivationFrom(jobs []scenario.Job, results []scenario.Result) (*Derivation, error) {
	if len(jobs) != len(results) {
		return nil, fmt.Errorf("report: %d results for %d jobs", len(results), len(jobs))
	}
	if len(results) < 2 {
		return nil, fmt.Errorf("report: need the δnop job plus at least one k job, have %d results", len(results))
	}
	if !strings.HasPrefix(jobs[0].Scenario.Workload.Scua, "nop") {
		return nil, fmt.Errorf("report: job %q is not the δnop calibration (scua %q)", jobs[0].ID, jobs[0].Scenario.Workload.Scua)
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return nil, err
	}
	deltaNop, err := deltaNopOf(jobs[0], results[0])
	if err != nil {
		return nil, err
	}

	typ, kmin, err := parseRSKNop(jobs[1].Scenario.Workload.Scua)
	if err != nil {
		return nil, err
	}
	t := isa.OpLoad
	if typ == "store" {
		t = isa.OpStore
	}

	slowdowns := make([]float64, 0, len(results)-1)
	minUtil := 1.0
	for _, r := range results[1:] {
		d := float64(r.Slowdown)
		if r.Requests > 0 {
			d /= float64(r.Requests)
		}
		slowdowns = append(slowdowns, d)
		if r.Utilization < minUtil {
			minUtil = r.Utilization
		}
	}

	der := &Derivation{Cfg: cfg, Type: t, KMin: kmin, DeltaNop: deltaNop}
	der.Res, der.Err = core.DeriveFromSeries(slowdowns, deltaNop, minUtil, core.Options{Type: t, KMin: kmin})
	return der, nil
}

// deltaNopOf recovers δnop from the calibration job's measurement: the
// isolated execution time divided by the number of nops executed. The
// nop count is recomputed from the job's declarative spec — the same
// deterministic program build the measuring machine used.
func deltaNopOf(job scenario.Job, res scenario.Result) (float64, error) {
	cfg, err := buildCfg(job)
	if err != nil {
		return 0, err
	}
	b := kernel.NewBuilder(cfg.DL1, cfg.IL1, cfg.L2)
	if job.Scenario.Workload.Unroll > 0 {
		b.Unroll = job.Scenario.Workload.Unroll
	}
	p, err := workload.BuildSpec(b, job.Scenario.Workload.Scua, job.Scenario.Workload.ScuaCore, 1)
	if err != nil {
		return 0, err
	}
	nops := kernel.NopCount(p) * res.Iters
	if nops == 0 {
		return 0, fmt.Errorf("report: δnop job %q executed no nops", job.ID)
	}
	cycles := res.IsolationCycles
	if cycles == 0 {
		cycles = res.Cycles
	}
	return float64(cycles) / float64(nops), nil
}
