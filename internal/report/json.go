package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// DocumentSchema is the current version of the JSON document encoding.
// Like scenario.ResultSchema, readers accept any document whose schema
// is at most DocumentSchema and reject newer ones instead of silently
// mis-rendering them.
const DocumentSchema = 1

// JSONBackend encodes a Document as schema-versioned JSON. The encoding
// is stable and lossless: DecodeDocument reads it back into an
// identical Document, so a machine consumer can archive the JSON form
// and re-render any other encoding later.
type JSONBackend struct{}

// Name implements Backend.
func (JSONBackend) Name() string { return "json" }

// jsonDoc is the top-level wire shape.
type jsonDoc struct {
	Schema    int         `json:"schema"`
	Title     string      `json:"title,omitempty"`
	Generator string      `json:"generator,omitempty"`
	Blocks    []jsonBlock `json:"blocks"`
}

// jsonBlock is the tagged-union envelope of one block: the kind
// discriminator plus exactly one populated payload field.
type jsonBlock struct {
	Kind      string     `json:"kind"`
	Heading   *Heading   `json:"heading,omitempty"`
	Paragraph *Paragraph `json:"paragraph,omitempty"`
	Table     *Table     `json:"table,omitempty"`
	Series    *Series    `json:"series,omitempty"`
	Timeline  *Timeline  `json:"timeline,omitempty"`
	Histogram *Histogram `json:"histogram,omitempty"`
	Bounds    *Bounds    `json:"bounds,omitempty"`
}

// Render implements Backend.
func (JSONBackend) Render(w io.Writer, d *Document) error {
	out := jsonDoc{Schema: DocumentSchema, Title: d.Title, Generator: d.Generator, Blocks: make([]jsonBlock, 0, len(d.Blocks))}
	for _, blk := range d.Blocks {
		jb := jsonBlock{Kind: blk.Kind()}
		switch t := blk.(type) {
		case Heading:
			jb.Heading = &t
		case Paragraph:
			jb.Paragraph = &t
		case Spacer:
			// kind alone carries it
		case Table:
			jb.Table = &t
		case Series:
			jb.Series = &t
		case Timeline:
			jb.Timeline = &t
		case Histogram:
			jb.Histogram = &t
		case Bounds:
			jb.Bounds = &t
		default:
			return fmt.Errorf("report: cannot encode block kind %q", blk.Kind())
		}
		out.Blocks = append(out.Blocks, jb)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeDocument reads a JSON-encoded document back into a Document,
// rejecting encodings written by a newer build (schema > DocumentSchema)
// and blocks of unknown kind.
func DecodeDocument(r io.Reader) (*Document, error) {
	var in jsonDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("report: document does not parse: %w", err)
	}
	// A document file holds exactly one document; trailing content means
	// a concatenated or corrupted file, and silently dropping it would
	// render an incomplete report with a clean exit.
	if dec.More() {
		return nil, fmt.Errorf("report: trailing data after the document — concatenated documents or a corrupted file?")
	}
	if in.Schema > DocumentSchema {
		return nil, fmt.Errorf("report: document schema %d but this build reads <= %d — written by a newer version?",
			in.Schema, DocumentSchema)
	}
	d := &Document{Title: in.Title, Generator: in.Generator}
	for i, jb := range in.Blocks {
		blk, err := jb.block()
		if err != nil {
			return nil, fmt.Errorf("report: document block %d: %w", i, err)
		}
		d.Blocks = append(d.Blocks, blk)
	}
	return d, nil
}

func (jb jsonBlock) block() (Block, error) {
	switch jb.Kind {
	case "heading":
		if jb.Heading == nil {
			return nil, fmt.Errorf("heading block without payload")
		}
		return *jb.Heading, nil
	case "paragraph":
		if jb.Paragraph == nil {
			return nil, fmt.Errorf("paragraph block without payload")
		}
		return *jb.Paragraph, nil
	case "spacer":
		return Spacer{}, nil
	case "table":
		if jb.Table == nil {
			return nil, fmt.Errorf("table block without payload")
		}
		return *jb.Table, nil
	case "series":
		if jb.Series == nil {
			return nil, fmt.Errorf("series block without payload")
		}
		return *jb.Series, nil
	case "timeline":
		if jb.Timeline == nil {
			return nil, fmt.Errorf("timeline block without payload")
		}
		return *jb.Timeline, nil
	case "histogram":
		if jb.Histogram == nil {
			return nil, fmt.Errorf("histogram block without payload")
		}
		return *jb.Histogram, nil
	case "bounds":
		if jb.Bounds == nil {
			return nil, fmt.Errorf("bounds block without payload")
		}
		return *jb.Bounds, nil
	}
	return nil, fmt.Errorf("unknown block kind %q", jb.Kind)
}
