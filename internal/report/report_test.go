package report_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rrbus/internal/exp"
	"rrbus/internal/report"
	"rrbus/internal/scenario"
)

func expand(t *testing.T, gen string, p scenario.Params) []scenario.Job {
	t.Helper()
	g, ok := scenario.Lookup(gen)
	if !ok {
		t.Fatalf("generator %q not registered", gen)
	}
	jobs, err := g.Expand(p)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// roundTrip serializes results exactly as StreamToFile would (JSONL rows
// with job indices) and decodes them back through the replay reader.
func roundTrip(t *testing.T, results []scenario.Result) []scenario.Result {
	t.Helper()
	var buf bytes.Buffer
	sink := exp.NewJSONLSink[scenario.Result](&buf)
	for i, r := range results {
		if err := sink.Emit(i, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := scenario.ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// TestReplayByteIdentical is the acceptance criterion of the
// results-first pipeline: for every supported figure/table, rendering
// from results that went through the JSONL wire format is byte-identical
// to rendering the live in-memory results.
func TestReplayByteIdentical(t *testing.T) {
	cases := []struct {
		gen    string
		params scenario.Params
		want   string // substring the rendering must contain
	}{
		{"fig2", nil, "γ=3"},
		{"fig3", scenario.Params{"max_delta": 7}, "gamma(eq2)"},
		{"fig5", scenario.Params{"ks": []int{1, 6}}, "port0"},
		{"fig6a", scenario.Params{"arch": "toy", "count": 2, "seed": 1}, "ready-contenders"},
		{"fig6b", scenario.Params{"archs": []string{"toy"}}, "ubdm"},
		{"fig7", scenario.Params{"arch": "toy", "kmax": 8, "iters": 5}, "slowdown"},
		{"fig7b", scenario.Params{"arch": "toy", "kmax": 10, "iters": 5}, "store buffer"},
		{"derive", scenario.Params{"arch": "toy", "kmax": 20}, "derived ubdm"},
		{"abl-scaling", scenario.Params{"cores": []int{2}, "l2hits": []int{1}}, "actual-ubd"},
		{"mix", scenario.Params{"arch": "toy", "count": 2, "kmax": 4}, "mix/000"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.gen, func(t *testing.T) {
			t.Parallel()
			jobs := expand(t, tc.gen, tc.params)
			results, err := scenario.RunAll(jobs)
			if err != nil {
				t.Fatal(err)
			}
			live, err := report.Render(tc.gen, jobs, results)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(live, tc.want) {
				t.Fatalf("rendering lacks %q:\n%s", tc.want, live)
			}
			replay, err := report.Render(tc.gen, jobs, roundTrip(t, results))
			if err != nil {
				t.Fatal(err)
			}
			if replay != live {
				t.Errorf("replayed rendering differs from live:\n--- live ---\n%s--- replay ---\n%s", live, replay)
			}
		})
	}
}

// TestTraceResultRoundTrip pins the wire format of trace-bearing
// results: the captured bus-event window survives JSONL serialization
// exactly, so replayed timelines are the recorded timelines.
func TestTraceResultRoundTrip(t *testing.T) {
	jobs := expand(t, "fig5", scenario.Params{"ks": []int{2}})
	results, err := scenario.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Trace) == 0 {
		t.Fatalf("fig5 job recorded no trace: %+v", results)
	}
	if results[0].Cores == 0 || results[0].TotalCycles == 0 {
		t.Errorf("result misses renderer metadata: cores=%d total_cycles=%d", results[0].Cores, results[0].TotalCycles)
	}
	raw, err := json.Marshal(results[0])
	if err != nil {
		t.Fatal(err)
	}
	var back scenario.Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, results[0]) {
		t.Errorf("trace-bearing result did not round-trip:\n got %+v\nwant %+v", back, results[0])
	}
	f, err := report.Fig5From(jobs, []scenario.Result{back})
	if err != nil {
		t.Fatal(err)
	}
	if f[0].K != 2 || f[0].Delta != 3 || f[0].Timeline == "" {
		t.Errorf("replayed timeline fig %+v", f[0])
	}
	// The toy platform's steady-state γ at δ = 3 is 3 (Fig. 3 matrix).
	if f[0].Gamma != 3 {
		t.Errorf("k=2: γ = %d, want 3", f[0].Gamma)
	}
}

// TestDerivationFromRecoversUBD checks the bound pipeline end to end on
// recorded results: the toy platform's ubd = 6 must be re-derived from a
// serialized derive sweep.
func TestDerivationFromRecoversUBD(t *testing.T) {
	jobs := expand(t, "derive", scenario.Params{"arch": "toy", "kmax": 20})
	results, err := scenario.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := report.DerivationFrom(jobs, roundTrip(t, results))
	if err != nil {
		t.Fatal(err)
	}
	if d.Err != nil {
		t.Fatalf("derivation failed: %v", d.Err)
	}
	if d.Res.UBDm != 6 {
		t.Errorf("derived ubdm = %d, want 6 (toy Eq. 1)", d.Res.UBDm)
	}
	if d.Cfg.UBD() != 6 {
		t.Errorf("rebuilt platform ubd = %d", d.Cfg.UBD())
	}
}

// TestCheckCatchesWrongPlan ensures replaying a recording against a
// different plan is rejected instead of silently mislabeling rows.
func TestCheckCatchesWrongPlan(t *testing.T) {
	jobs := expand(t, "fig7", scenario.Params{"arch": "toy", "kmax": 3, "iters": 2})
	results, err := scenario.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	other := expand(t, "fig7", scenario.Params{"arch": "toy", "kmax": 3, "iters": 2, "type": "store"})
	if err := report.Check(other, results); err == nil {
		t.Error("results accepted against a plan with different job IDs")
	}
	if err := report.Check(jobs[:2], results); err == nil {
		t.Error("truncated job list accepted")
	}
	if err := report.Check(jobs, results); err != nil {
		t.Errorf("matching plan rejected: %v", err)
	}
}
