package report

import (
	"bytes"
	"fmt"
	"strconv"

	"rrbus/internal/trace"
)

// Document is the typed output of every renderer: an ordered list of
// blocks describing a figure, table or derivation report independently
// of any one encoding. A Backend turns the same Document into terminal
// text (byte-identical to the pre-Document renderers), a self-contained
// HTML page, or a schema-versioned JSON encoding — the analysis stage
// produces structure, the presentation stage produces bytes.
type Document struct {
	// Title labels the document (the plan name for scenario renders);
	// backends may surface it (HTML <title>) but the text backend never
	// prints it, so titling a document cannot perturb byte-identity.
	Title string
	// Generator names the scenario generator the document was rendered
	// from ("" for generic tables and hand-built documents).
	Generator string
	// Blocks is the ordered content.
	Blocks []Block
}

// Add appends blocks and returns the document (builder convenience).
func (d *Document) Add(blocks ...Block) *Document {
	d.Blocks = append(d.Blocks, blocks...)
	return d
}

// Prepend inserts blocks before the existing content — how the CLIs
// attach a context heading to a generic results table.
func (d *Document) Prepend(blocks ...Block) *Document {
	d.Blocks = append(append([]Block{}, blocks...), d.Blocks...)
	return d
}

// Text renders the document with the text backend (the legacy terminal
// encoding). Building text into memory cannot fail.
func (d *Document) Text() string {
	var b bytes.Buffer
	// Rendering to a bytes.Buffer never returns an error.
	_ = (TextBackend{}).Render(&b, d)
	return b.String()
}

// Block is one typed element of a Document. The concrete types are
// Heading, Paragraph, Spacer, Table, Series, Timeline, Histogram and
// Bounds.
type Block interface {
	// Kind is the block's stable machine name, used as the JSON
	// discriminator.
	Kind() string
}

// Heading is a section heading. Level 1 renders as "== text ==" in the
// text backend (and <h1> in HTML), level 2 as "-- text --" (<h2>).
type Heading struct {
	Level int    `json:"level"`
	Text  string `json:"text"`
}

// Kind implements Block.
func (Heading) Kind() string { return "heading" }

// Paragraph is one line of prose (the text backend prints it verbatim
// plus a newline).
type Paragraph struct {
	Text string `json:"text"`
}

// Kind implements Block.
func (Paragraph) Kind() string { return "paragraph" }

// Spacer is an empty separator line in the text encoding; the HTML
// backend ignores it (spacing is the stylesheet's job).
type Spacer struct{}

// Kind implements Block.
func (Spacer) Kind() string { return "spacer" }

// ValueKind discriminates the scalar types a table or series cell can
// hold.
type ValueKind int

// Cell value kinds.
const (
	KindInt ValueKind = iota
	KindFloat
	KindString
)

// Value is one typed cell. It marshals to a native JSON scalar — a
// number or a string — and unmarshals back to the same kind (floats are
// always written with a decimal point so an integral float never decays
// to an int across a round trip).
type Value struct {
	K     ValueKind
	Int   int64
	Float float64
	Str   string
}

// Int64 wraps an integer cell.
func Int64(v int64) Value { return Value{K: KindInt, Int: v} }

// IntV wraps an int cell.
func IntV(v int) Value { return Value{K: KindInt, Int: int64(v)} }

// FloatV wraps a float cell.
func FloatV(v float64) Value { return Value{K: KindFloat, Float: v} }

// StringV wraps a string cell.
func StringV(v string) Value { return Value{K: KindString, Str: v} }

// MarshalJSON implements json.Marshaler (see Value).
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.K {
	case KindFloat:
		s := strconv.FormatFloat(v.Float, 'f', -1, 64)
		if !bytes.ContainsAny([]byte(s), ".eE") {
			s += ".0" // keep the kind recoverable on decode
		}
		return []byte(s), nil
	case KindString:
		return []byte(strconv.Quote(v.Str)), nil
	default:
		return []byte(strconv.FormatInt(v.Int, 10)), nil
	}
}

// UnmarshalJSON implements json.Unmarshaler (see Value).
func (v *Value) UnmarshalJSON(data []byte) error {
	data = bytes.TrimSpace(data)
	if len(data) == 0 {
		return fmt.Errorf("report: empty cell value")
	}
	if data[0] == '"' {
		s, err := strconv.Unquote(string(data))
		if err != nil {
			return fmt.Errorf("report: cell value %s: %w", data, err)
		}
		*v = StringV(s)
		return nil
	}
	if bytes.ContainsAny(data, ".eE") {
		f, err := strconv.ParseFloat(string(data), 64)
		if err != nil {
			return fmt.Errorf("report: cell value %s: %w", data, err)
		}
		*v = FloatV(f)
		return nil
	}
	i, err := strconv.ParseInt(string(data), 10, 64)
	if err != nil {
		return fmt.Errorf("report: cell value %s: %w", data, err)
	}
	*v = Int64(i)
	return nil
}

// Column describes one typed table column.
type Column struct {
	// Key is the machine name of the column (JSON consumers).
	Key string `json:"key"`
	// Label is the human header cell (HTML consumers).
	Label string `json:"label"`
	// Format is the text backend's fmt verb for cells in this column,
	// including the separator that precedes it ("  %10d"). String cells
	// in a numeric column (the results table's "-" placeholders) render
	// with the verb rewritten to %s at the same width.
	Format string `json:"format"`
}

// Row is one table row: cells aligned with the table's columns plus an
// optional free-form annotation appended verbatim by the text backend
// ("  <- mismatch", "  ERR: ...").
type Row struct {
	Cells []Value `json:"cells"`
	Note  string  `json:"note,omitempty"`
}

// Table is a typed-column table. Header is the exact legacy header line
// of the text encoding; Columns carry the machine/human names the other
// backends use.
type Table struct {
	Name    string   `json:"name,omitempty"`
	Header  string   `json:"header"`
	Columns []Column `json:"columns"`
	Rows    []Row    `json:"rows"`
}

// Kind implements Block.
func (Table) Kind() string { return "table" }

// SeriesLine is one named value column of a sweep.
type SeriesLine struct {
	Key string `json:"key"`
	// Format is the text cell format including its leading separator.
	Format string  `json:"format"`
	Values []Value `json:"values"`
}

// Series is a sweep: per-k points of one or more named lines (the
// Fig. 7 family). The text backend renders the legacy aligned columns
// with a '#' bar scaled to the BarLine's maximum; the HTML backend
// renders an inline SVG chart.
type Series struct {
	Name string `json:"name,omitempty"`
	// Header is the exact legacy column header line.
	Header string `json:"header"`
	// XKey names the x column ("k"); X holds its values, row-aligned
	// with every line's Values.
	XKey string `json:"x_key"`
	X    []int  `json:"x"`
	// Lines are the value columns.
	Lines []SeriesLine `json:"lines"`
	// BarLine indexes the line the text backend's 30-char '#' bar is
	// scaled to (-1 = no bar).
	BarLine int `json:"bar_line"`
	// Footer lines are printed verbatim after the points ("ref peaks at
	// k=[27 54], ...").
	Footer []string `json:"footer,omitempty"`
	// Peaks carries the structured saw-tooth maxima per line, when the
	// renderer detected them (Fig. 7a).
	Peaks map[string][]int `json:"peaks,omitempty"`
	// ZeroFromK is the first k from which the sweep is identically zero
	// (Fig. 7b's store-buffer crossover), when meaningful.
	ZeroFromK *int `json:"zero_from_k,omitempty"`
}

// Kind implements Block.
func (Series) Kind() string { return "series" }

// Timeline is a recorded bus-event window (Figs. 2 and 5): the captured
// grants plus the cycle window and port count the Gantt rendering needs.
// The text backend reproduces trace.Timeline's ASCII chart; the HTML
// backend draws an SVG Gantt.
type Timeline struct {
	// K, Delta, Gamma describe the steady-state scua request the window
	// is centered on.
	K     int `json:"k"`
	Delta int `json:"delta"`
	Gamma int `json:"gamma"`
	// NPorts is the number of bus ports (cores + memory).
	NPorts int `json:"nports"`
	// From, To bound the rendered cycle window.
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
	// Events is the captured grant window, all ports, in grant order.
	Events []trace.Event `json:"events"`
}

// Kind implements Block.
func (Timeline) Kind() string { return "timeline" }

// Histogram is a per-request contention-delay distribution (Fig. 6b):
// dense counts indexed by γ plus the derived headline statistics.
type Histogram struct {
	Arch      string  `json:"arch,omitempty"`
	UBDm      int     `json:"ubdm"`
	ActualUBD int     `json:"actual_ubd"`
	ModeGamma int     `json:"mode_gamma"`
	ModeFrac  float64 `json:"mode_frac"`
	SimCycles uint64  `json:"sim_cycles,omitempty"`
	// Counts[v] is the number of requests that observed γ = v.
	Counts []uint64 `json:"counts"`
}

// Kind implements Block.
func (Histogram) Kind() string { return "histogram" }

// BoundsResult is the successful half of a Bounds block: the derived
// numbers of core.Result flattened into a stable wire shape.
type BoundsResult struct {
	UBDm     int     `json:"ubdm"`
	PeriodK  int     `json:"period_k"`
	DeltaNop float64 `json:"delta_nop"`
	KMin     int     `json:"kmin"`
	// Slowdowns is the per-request slowdown series at k = KMin.. (the
	// saw-tooth the period was read from).
	Slowdowns []float64 `json:"slowdowns,omitempty"`
	// Methods records each detection method's ubd estimate in cycles.
	Methods map[string]int `json:"methods,omitempty"`
	// Confidence report (§4.3).
	UtilizationOK   bool     `json:"utilization_ok"`
	MinUtilization  float64  `json:"min_utilization"`
	PeriodsObserved float64  `json:"periods_observed"`
	MethodsAgree    bool     `json:"methods_agree"`
	Notes           []string `json:"notes,omitempty"`
	Confidence      float64  `json:"confidence"`
}

// Bounds is a derivation summary (the derive generator, rrbus-derive):
// the platform's Eq. 1 ground truth next to the methodology's derived
// Δ/γ numbers, or the detection failure.
type Bounds struct {
	Platform   string `json:"platform"`
	Cores      int    `json:"cores"`
	LBus       int    `json:"lbus"`
	AccessType string `json:"access_type"`
	ActualUBD  int    `json:"actual_ubd"`
	// Err is the detection failure, if any ("" = success).
	Err string `json:"error,omitempty"`
	// Res carries the derived numbers (nil when the derivation failed
	// before producing any).
	Res *BoundsResult `json:"result,omitempty"`
}

// Kind implements Block.
func (Bounds) Kind() string { return "bounds" }
