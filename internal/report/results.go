package report

import (
	"rrbus/internal/scenario"
)

// ResultsTable builds the generic one-row-per-job results document —
// the fallback for plans without a dedicated figure renderer. Its text
// rendering is pinned byte-identical to the pre-Document table by the
// results-table golden.
func ResultsTable(results []scenario.Result) *Document {
	return (&Document{}).Add(resultsTable(results))
}

func resultsTable(rs []scenario.Result) Table {
	t := Table{
		Name:   "results",
		Header: "job                             platform      cycles   isolation    slowdown  requests  maxγ  util",
		Columns: []Column{
			{Key: "job", Label: "job", Format: "%-30s"},
			{Key: "platform", Label: "platform", Format: "  %-10s"},
			{Key: "cycles", Label: "cycles", Format: " %9d"},
			{Key: "isolation_cycles", Label: "isolation", Format: "  %10d"},
			{Key: "slowdown", Label: "slowdown", Format: "  %10d"},
			{Key: "requests", Label: "requests", Format: "  %8d"},
			{Key: "max_gamma", Label: "maxγ", Format: "  %4d"},
			{Key: "util_pct", Label: "util", Format: "  %4.1f%%"},
		},
	}
	for _, r := range rs {
		isolation, slowdown := StringV("-"), StringV("-")
		if r.IsolationCycles > 0 || r.Slowdown != 0 {
			isolation = Int64(int64(r.IsolationCycles))
			slowdown = Int64(r.Slowdown)
		}
		t.Rows = append(t.Rows, Row{Cells: []Value{
			StringV(r.ID),
			StringV(r.Platform),
			Int64(int64(r.Cycles)),
			isolation,
			slowdown,
			Int64(int64(r.Requests)),
			Int64(int64(r.MaxGamma)),
			FloatV(r.Utilization * 100),
		}})
	}
	return t
}
