package report_test

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"rrbus/internal/report"
)

// TestDocumentJSONRoundTrip is the JSON half of the backend contract:
// for every generator, encoding the Document and decoding it back loses
// nothing — the re-rendered text is byte-identical and a second encode
// reproduces the first one's bytes (so archived documents are stable).
func TestDocumentJSONRoundTrip(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			jobs, results := goldenInputs(t, tc.gen, tc.params)
			doc, err := report.DocumentFor(tc.gen, jobs, results)
			if err != nil {
				t.Fatal(err)
			}
			var enc bytes.Buffer
			if err := (report.JSONBackend{}).Render(&enc, doc); err != nil {
				t.Fatal(err)
			}
			back, err := report.DecodeDocument(bytes.NewReader(enc.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := back.Text(), doc.Text(); got != want {
				t.Errorf("decoded document renders different text\n--- decoded ---\n%s--- original ---\n%s", got, want)
			}
			var enc2 bytes.Buffer
			if err := (report.JSONBackend{}).Render(&enc2, back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
				t.Error("re-encoding a decoded document changed its bytes")
			}
			if back.Generator != tc.gen {
				t.Errorf("decoded generator %q, want %q", back.Generator, tc.gen)
			}
		})
	}
}

// TestDecodeDocumentRejectsNewerSchema mirrors the Result-row
// versioning: a document written by a newer build errors out instead of
// silently mis-rendering.
func TestDecodeDocumentRejectsNewerSchema(t *testing.T) {
	newer := strings.Replace(`{"schema": SCHEMA, "blocks": []}`,
		"SCHEMA", "99", 1)
	if _, err := report.DecodeDocument(strings.NewReader(newer)); err == nil {
		t.Error("schema 99 document accepted")
	} else if !strings.Contains(err.Error(), "newer") {
		t.Errorf("unhelpful schema error: %v", err)
	}
	if _, err := report.DecodeDocument(strings.NewReader(`{"schema": 1, "blocks": [{"kind": "hologram"}]}`)); err == nil {
		t.Error("unknown block kind accepted")
	}
}

// TestHTMLWellFormed checks every generator's HTML encoding parses
// under encoding/xml at full strictness (balanced tags, quoted
// attributes, escaped text) and actually contains its content: a table
// or chart element per table/series/timeline/histogram block.
func TestHTMLWellFormed(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			jobs, results := goldenInputs(t, tc.gen, tc.params)
			doc, err := report.DocumentFor(tc.gen, jobs, results)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := (report.HTMLBackend{}).Render(&buf, doc); err != nil {
				t.Fatal(err)
			}
			counts := map[string]int{}
			dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
			dec.Strict = true
			for {
				tok, err := dec.Token()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("HTML is not XML-well-formed: %v\n%s", err, buf.String())
				}
				if se, ok := tok.(xml.StartElement); ok {
					counts[se.Name.Local]++
				}
			}
			want := map[string]int{}
			for _, blk := range doc.Blocks {
				switch blk.(type) {
				case report.Table:
					want["table"]++
				case report.Series, report.Timeline:
					want["svg"]++
				case report.Histogram:
					want["p"]++ // stat line; the svg is data-dependent
				case report.Heading:
					want["h1"] += 0 // level-dependent; presence checked below
				}
			}
			for el, n := range want {
				if counts[el] < n {
					t.Errorf("HTML has %d <%s> elements, document has %d such blocks", counts[el], el, n)
				}
			}
			if counts["html"] != 1 || counts["body"] != 1 {
				t.Error("not a single-page HTML document")
			}
		})
	}
}

// TestValueKindsRoundTrip pins the cell encoding: ints stay ints,
// integral floats stay floats, strings stay strings.
func TestValueKindsRoundTrip(t *testing.T) {
	doc := (&report.Document{}).Add(report.Table{
		Header:  "h",
		Columns: []report.Column{{Key: "a", Format: "%d"}, {Key: "b", Format: "  %4.1f"}, {Key: "c", Format: "  %s"}},
		Rows: []report.Row{
			{Cells: []report.Value{report.IntV(42), report.FloatV(35), report.StringV("-")}},
			{Cells: []report.Value{report.Int64(-7), report.FloatV(0.125), report.StringV("x y")}},
		},
	})
	var buf bytes.Buffer
	if err := (report.JSONBackend{}).Render(&buf, doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "35.0") {
		t.Errorf("integral float did not keep a decimal point:\n%s", buf.String())
	}
	back, err := report.DecodeDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cells := back.Blocks[0].(report.Table).Rows[0].Cells
	if cells[0].K != report.KindInt || cells[0].Int != 42 {
		t.Errorf("int cell decoded as %+v", cells[0])
	}
	if cells[1].K != report.KindFloat || cells[1].Float != 35 {
		t.Errorf("float cell decoded as %+v", cells[1])
	}
	if cells[2].K != report.KindString || cells[2].Str != "-" {
		t.Errorf("string cell decoded as %+v", cells[2])
	}
	if got, want := back.Text(), doc.Text(); got != want {
		t.Errorf("cell round trip perturbed text: %q != %q", got, want)
	}
}

// TestBackendFor pins the backend registry.
func TestBackendFor(t *testing.T) {
	for _, name := range report.Backends() {
		b, err := report.BackendFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != name {
			t.Errorf("backend %q reports name %q", name, b.Name())
		}
	}
	if b, err := report.BackendFor(""); err != nil || b.Name() != "text" {
		t.Errorf("empty name must select text, got %v, %v", b, err)
	}
	if _, err := report.BackendFor("pdf"); err == nil {
		t.Error("unknown backend accepted")
	}
}
