// Package report is the analysis half of the measurement→analysis
// pipeline: renderers that rebuild every figure, table and derived bound
// of the paper's evaluation from recorded scenario results — never from
// live simulation.
//
// Each renderer is a pure function over (jobs, results): the declarative
// job list a scenario plan expands to, and one scenario.Result per job.
// Where the results came from is irrelevant — streamed live from
// exp.Stream moments ago, or decoded from a merged JSONL file written on
// another machine last month (scenario.ReadResults). Because the job
// list is itself a pure function of the plan, a replayed rendering is
// byte-identical to the live run's: simulate once, analyze forever.
//
// Renderers produce a typed Document — an ordered list of blocks
// (headings, typed-column tables, sweep series, trace-event timelines,
// γ histograms, derived-bound summaries) — and a Backend encodes the
// Document: TextBackend reproduces the legacy terminal output byte for
// byte (golden-tested per generator), HTMLBackend emits a self-contained
// page with inline SVG charts, JSONBackend a schema-versioned
// machine-readable encoding that decodes back into the same Document.
//
// Renderers may rebuild pure artifacts from the declarative inputs —
// platform configs (PlatformSpec.Build) for Eq. 1 ground truth, kernel
// programs for instruction counts, Eq. 2 closed forms — but never run a
// simulation; nothing here calls sim.Run. Derived bounds re-run only
// the detection half of the methodology (core.DeriveFromSeries) over the
// recorded slowdown series, with δnop taken from the in-band calibration
// row every derivation-shaped generator emits.
package report

import (
	"fmt"

	"rrbus/internal/scenario"
	"rrbus/internal/sim"
)

// Renderer rebuilds one figure/table document from a generator's
// recorded results.
type Renderer func(jobs []scenario.Job, results []scenario.Result) (*Document, error)

// For returns the renderer for a generator's job lists.
func For(generator string) (Renderer, bool) {
	switch generator {
	case "fig2":
		return Fig2, true
	case "fig3":
		return Fig3, true
	case "fig4":
		return Fig4, true
	case "fig5":
		return Fig5, true
	case "fig6a":
		return Fig6a, true
	case "fig6b":
		return Fig6b, true
	case "fig7":
		return Fig7, true
	case "fig7a":
		return Fig7a, true
	case "fig7b":
		return Fig7b, true
	case "derive":
		return Derive, true
	case "abl-arb":
		return AblArb, true
	case "abl-dnop":
		return AblDeltaNop, true
	case "abl-scaling":
		return AblScaling, true
	}
	return nil, false
}

// Check validates that results line up with the job list: one result per
// job, IDs matching. This is what catches replaying a JSONL file against
// the wrong plan (or a truncated recording) before a renderer quietly
// mislabels rows.
func Check(jobs []scenario.Job, results []scenario.Result) error {
	if len(results) != len(jobs) {
		return fmt.Errorf("report: %d results for %d jobs — truncated recording or wrong plan?", len(results), len(jobs))
	}
	for i := range results {
		if results[i].ID != "" && results[i].ID != jobs[i].ID {
			return fmt.Errorf("report: result %d is %q but the plan's job %d is %q — results from a different plan?",
				i, results[i].ID, i, jobs[i].ID)
		}
	}
	return nil
}

// DocumentFor validates results against the job list and builds the
// generator's Document; generators without a dedicated figure (mix,
// explicit job lists) fall back to the generic results table — callers
// that must not fall back silently can distinguish via For.
func DocumentFor(generator string, jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	if err := Check(jobs, results); err != nil {
		return nil, err
	}
	if r, ok := For(generator); ok {
		doc, err := r(jobs, results)
		if err != nil {
			return nil, err
		}
		doc.Generator = generator
		return doc, nil
	}
	doc := ResultsTable(results)
	doc.Generator = generator
	return doc, nil
}

// Render is the text-backend convenience over DocumentFor: the legacy
// terminal rendering, byte-identical to the pre-Document renderers.
func Render(generator string, jobs []scenario.Job, results []scenario.Result) (string, error) {
	doc, err := DocumentFor(generator, jobs, results)
	if err != nil {
		return "", err
	}
	return doc.Text(), nil
}

// buildCfg rebuilds a job's platform configuration from its declarative
// spec — construction only, no simulation.
func buildCfg(j scenario.Job) (sim.Config, error) {
	return j.Scenario.Platform.Build()
}
