package report

import (
	"fmt"
	"io"
	"strings"

	"rrbus/internal/core"
	"rrbus/internal/stats"
	"rrbus/internal/trace"
)

// TextBackend is the legacy terminal encoding: it reproduces the
// pre-Document renderers byte for byte (golden tests pin every
// generator's output), so replacing string renderers with Documents
// cannot perturb the pipeline's byte-identity contract.
type TextBackend struct{}

// Name implements Backend.
func (TextBackend) Name() string { return "text" }

// Render implements Backend.
func (TextBackend) Render(w io.Writer, d *Document) error {
	var b strings.Builder
	for _, blk := range d.Blocks {
		renderBlockText(&b, blk)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func renderBlockText(b *strings.Builder, blk Block) {
	switch t := blk.(type) {
	case Heading:
		if t.Level >= 2 {
			fmt.Fprintf(b, "-- %s --\n", t.Text)
		} else {
			fmt.Fprintf(b, "== %s ==\n", t.Text)
		}
	case Paragraph:
		b.WriteString(t.Text)
		b.WriteByte('\n')
	case Spacer:
		b.WriteByte('\n')
	case Table:
		renderTableText(b, t)
	case Series:
		renderSeriesText(b, t)
	case Timeline:
		b.WriteString(trace.Timeline(t.Events, t.NPorts, t.From, t.To))
	case Histogram:
		renderHistogramText(b, t)
	case Bounds:
		renderBoundsText(b, t)
	}
}

func renderTableText(b *strings.Builder, t Table) {
	b.WriteString(t.Header)
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row.Cells {
			if i >= len(t.Columns) {
				break
			}
			b.WriteString(formatCell(t.Columns[i].Format, cell))
		}
		b.WriteString(row.Note)
		b.WriteByte('\n')
	}
}

func renderSeriesText(b *strings.Builder, s Series) {
	b.WriteString(s.Header)
	b.WriteByte('\n')
	// The '#' bar scales to the bar line's maximum, floor 1 — exactly
	// the legacy int64 arithmetic, so bar lengths cannot drift.
	maxS := int64(1)
	if s.BarLine >= 0 && s.BarLine < len(s.Lines) {
		for _, v := range s.Lines[s.BarLine].Values {
			if v.K == KindInt && v.Int > maxS {
				maxS = v.Int
			}
		}
	}
	for i, x := range s.X {
		fmt.Fprintf(b, "%3d", x)
		for _, line := range s.Lines {
			if i < len(line.Values) {
				b.WriteString(formatCell(line.Format, line.Values[i]))
			}
		}
		if s.BarLine >= 0 && s.BarLine < len(s.Lines) && i < len(s.Lines[s.BarLine].Values) {
			n := int(s.Lines[s.BarLine].Values[i].Int * 30 / maxS)
			if n < 0 {
				n = 0
			}
			b.WriteString("  ")
			b.WriteString(strings.Repeat("#", n))
		}
		b.WriteByte('\n')
	}
	for _, f := range s.Footer {
		b.WriteString(f)
		b.WriteByte('\n')
	}
}

func renderHistogramText(b *strings.Builder, h Histogram) {
	fmt.Fprintf(b, "%s: ubdm(observed max)=%d actual ubd=%d mode γ=%d (%.1f%% of requests)\n",
		h.Arch, h.UBDm, h.ActualUBD, h.ModeGamma, h.ModeFrac*100)
	b.WriteString(stats.FromDense(h.Counts).String())
}

func renderBoundsText(b *strings.Builder, d Bounds) {
	fmt.Fprintf(b, "platform            %s (%d cores, lbus=%d)\n", d.Platform, d.Cores, d.LBus)
	fmt.Fprintf(b, "access type         %s\n", d.AccessType)
	fmt.Fprintf(b, "actual ubd (Eq.1)   %d cycles\n", d.ActualUBD)
	if d.Err != "" {
		fmt.Fprintf(b, "derivation FAILED: %s\n", d.Err)
	} else if d.Res != nil {
		b.WriteString(d.Res.toCore().Report())
	}
}

// toCore rebuilds the core.Result the wire shape was flattened from, so
// the text backend reuses core's Report() verbatim instead of
// duplicating its format.
func (r *BoundsResult) toCore() *core.Result {
	res := &core.Result{
		UBDm:      r.UBDm,
		PeriodK:   r.PeriodK,
		DeltaNop:  r.DeltaNop,
		KMin:      r.KMin,
		Slowdowns: r.Slowdowns,
		Methods:   make(map[core.PeriodMethod]int, len(r.Methods)),
		Confidence: core.Confidence{
			UtilizationOK:   r.UtilizationOK,
			MinUtilization:  r.MinUtilization,
			PeriodsObserved: r.PeriodsObserved,
			MethodsAgree:    r.MethodsAgree,
			Notes:           r.Notes,
		},
	}
	for m, v := range r.Methods {
		res.Methods[core.PeriodMethod(m)] = v
	}
	return res
}

// boundsResult flattens a core.Result into the Bounds wire shape.
func boundsResult(res *core.Result) *BoundsResult {
	if res == nil {
		return nil
	}
	out := &BoundsResult{
		UBDm:            res.UBDm,
		PeriodK:         res.PeriodK,
		DeltaNop:        res.DeltaNop,
		KMin:            res.KMin,
		Slowdowns:       res.Slowdowns,
		Methods:         make(map[string]int, len(res.Methods)),
		UtilizationOK:   res.Confidence.UtilizationOK,
		MinUtilization:  res.Confidence.MinUtilization,
		PeriodsObserved: res.Confidence.PeriodsObserved,
		MethodsAgree:    res.Confidence.MethodsAgree,
		Notes:           res.Confidence.Notes,
		Confidence:      res.Confidence.Score(),
	}
	for m, v := range res.Methods {
		out.Methods[string(m)] = v
	}
	return out
}

// formatCell renders one cell with its column's fmt verb. String cells
// in a numeric column (the results table's "-" placeholders) render at
// the same width with the verb rewritten to %s; string columns keep
// their format untouched (width, precision and all).
func formatCell(format string, v Value) string {
	switch v.K {
	case KindString:
		if verbOf(format) != 's' {
			format = stringFormat(format)
		}
		return fmt.Sprintf(format, v.Str)
	case KindFloat:
		return fmt.Sprintf(format, v.Float)
	default:
		return fmt.Sprintf(format, v.Int)
	}
}

// verbOf returns the conversion letter of the format's (single) verb,
// or 0 if there is none.
func verbOf(format string) byte {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if i+1 < len(format) && format[i+1] == '%' {
			i++
			continue
		}
		for i++; i < len(format); i++ {
			c := format[i]
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				return c
			}
		}
	}
	return 0
}

// stringFormat rewrites a numeric fmt verb to %s, preserving flags and
// width and dropping the precision ("  %10d" → "  %10s").
func stringFormat(format string) string {
	var b strings.Builder
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+1 < len(format) && format[i+1] == '%' {
			b.WriteString("%%")
			i++
			continue
		}
		b.WriteByte('%')
		i++
		for i < len(format) && strings.IndexByte("-+ #0", format[i]) >= 0 {
			b.WriteByte(format[i])
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			b.WriteByte(format[i])
			i++
		}
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		b.WriteByte('s') // format[i] was the numeric verb
	}
	return b.String()
}
