package report

import (
	"fmt"
	"strings"

	"rrbus/internal/isa"
	"rrbus/internal/scenario"
)

// The per-generator document renderers: one per generator, each
// producing the complete figure as a typed Document (heading included)
// so a live scenario run and a JSONL replay build identical documents —
// and, through the text backend, print identical bytes.

// Fig2 renders the Fig. 2 timeline from the fig2 generator's recorded
// result.
func Fig2(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	tl, err := fig2Timeline(jobs, results)
	if err != nil {
		return nil, err
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Fig 2"}
	return d.Add(
		Heading{Level: 1, Text: fmt.Sprintf("Fig 2: request with δ=%d on %s platform (ubd=%d) suffers γ=%d",
			tl.Delta, cfg.Name, cfg.UBD(), tl.Gamma)},
		tl,
		Spacer{},
	), nil
}

// Fig3 renders the γ(δ) matrix of Fig. 3.
func Fig3(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	return gammaFig("Fig 3: γ(δ) matrix", jobs, results)
}

// Fig4 renders the saw-tooth γ(δ) overlay of Fig. 4.
func Fig4(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	return gammaFig("Fig 4: saw-tooth γ(δ)", jobs, results)
}

func gammaFig(title string, jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	rows, err := GammaRowsFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return nil, err
	}
	d := &Document{Title: title}
	return d.Add(
		Heading{Level: 1, Text: fmt.Sprintf("%s on %s platform (ubd=%d)", title, cfg.Name, cfg.UBD())},
		gammaTable(rows),
		Spacer{},
	), nil
}

// Fig5 renders the nop-insertion timelines of Fig. 5.
func Fig5(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	blocks, err := fig5Timelines(jobs, results)
	if err != nil {
		return nil, err
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Fig 5"}
	d.Add(Heading{Level: 1, Text: fmt.Sprintf("Fig 5: nop insertion timelines on %s platform", cfg.Name)})
	for _, tl := range blocks {
		d.Add(
			Heading{Level: 2, Text: fmt.Sprintf("k=%d (δ=%d) → γ=%d", tl.K, tl.Delta, tl.Gamma)},
			tl,
		)
	}
	return d.Add(Spacer{}), nil
}

// Fig6a renders the ready-contender comparison of Fig. 6(a).
func Fig6a(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	data, err := Fig6aFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Fig 6a"}
	return d.Add(
		Heading{Level: 1, Text: fmt.Sprintf("Fig 6a: ready contenders at scua requests (%d workloads)", len(data.WorkloadNames))},
		data.table(),
		Spacer{},
		Paragraph{Text: "workloads: " + strings.Join(data.WorkloadNames, ", ")},
		Spacer{},
	), nil
}

// Fig6b renders the contention-delay histograms of Fig. 6(b).
func Fig6b(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	rows, err := Fig6bFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Fig 6b"}
	d.Add(Heading{Level: 1, Text: fmt.Sprintf("Fig 6b: contention-delay histograms of rsk vs %d rsk", cfg.Cores-1)})
	for _, r := range rows {
		d.Add(r.histogram(), Spacer{})
	}
	return d, nil
}

// Fig7 renders a single recorded slowdown sweep (the generic fig7
// generator).
func Fig7(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	pts, err := SweepPointsFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	typ, _, err := parseRSKNop(jobs[0].Scenario.Workload.Scua)
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Fig 7"}
	return d.Add(
		Heading{Level: 1, Text: fmt.Sprintf("Fig 7: rsk-nop(%s) slowdown sweep (%s)", typ, results[0].Platform)},
		sweepSeries(pts),
		Spacer{},
	), nil
}

// Fig7a renders the two-architecture load sweep of Fig. 7(a).
func Fig7a(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	data, err := Fig7aFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Fig 7a"}
	return d.Add(
		Heading{Level: 1, Text: fmt.Sprintf("Fig 7a: rsk-nop(load) slowdown sweep (%s & %s)",
			results[0].Platform, results[len(results)-1].Platform)},
		data.series(),
		Spacer{},
	), nil
}

// Fig7b renders the store sweep of Fig. 7(b).
func Fig7b(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	data, err := Fig7bFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Fig 7b"}
	return d.Add(
		Heading{Level: 1, Text: fmt.Sprintf("Fig 7b: rsk-nop(store) slowdown sweep (%s)", results[0].Platform)},
		data.series(),
		Spacer{},
	), nil
}

// Derive renders the derivation report of a recorded derive block: the
// paper's methodology outcome next to Eq. 1 ground truth.
func Derive(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	der, err := DerivationFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "derivation"}
	return d.Add(der.Bounds()), nil
}

// Bounds flattens the derivation into its typed document block.
func (d *Derivation) Bounds() Bounds {
	typ := "load"
	if d.Type == isa.OpStore {
		typ = "store"
	}
	b := Bounds{
		Platform:   d.Cfg.Name,
		Cores:      d.Cfg.Cores,
		LBus:       d.Cfg.BusLatency(),
		AccessType: typ,
		ActualUBD:  d.Cfg.UBD(),
		Res:        boundsResult(d.Res),
	}
	if d.Err != nil {
		b.Err = d.Err.Error()
	}
	return b
}

// AblArb renders the E9a arbitration-policy ablation.
func AblArb(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	rows, err := ArbitersFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Ablation: arbitration policies"}
	return d.Add(
		Heading{Level: 1, Text: "Ablation: arbitration policies"},
		arbitersTable(rows),
		Spacer{},
	), nil
}

// AblDeltaNop renders the E9b δnop-sampling ablation.
func AblDeltaNop(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	rows, err := DeltaNopsFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Ablation: δnop > 1 sampling"}
	return d.Add(
		Heading{Level: 1, Text: "Ablation: δnop > 1 sampling"},
		deltaNopTable(rows),
		Spacer{},
	), nil
}

// AblScaling renders the E9c geometry ablation.
func AblScaling(jobs []scenario.Job, results []scenario.Result) (*Document, error) {
	rows, err := ScalingFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	d := &Document{Title: "Ablation: Eq. 1 recovery across geometries"}
	return d.Add(
		Heading{Level: 1, Text: "Ablation: Eq. 1 recovery across geometries"},
		scalingTable(rows),
		Spacer{},
	), nil
}
