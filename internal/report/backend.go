package report

import (
	"fmt"
	"io"
	"strings"
)

// Backend encodes a Document into one concrete output format. Three
// implementations ship: TextBackend (the legacy terminal encoding,
// byte-identical to the pre-Document renderers), HTMLBackend (a
// self-contained single-file page with inline SVG charts) and
// JSONBackend (a schema-versioned machine-readable encoding that
// decodes back into an identical Document).
type Backend interface {
	// Name is the backend's CLI spelling ("text", "html", "json").
	Name() string
	// Render writes the document's encoding to w.
	Render(w io.Writer, d *Document) error
}

// Backends lists the available backend names in CLI order.
func Backends() []string { return []string{"text", "html", "json"} }

// BackendFor returns the backend with the given CLI name ("" selects
// text).
func BackendFor(name string) (Backend, error) {
	switch name {
	case "", "text":
		return TextBackend{}, nil
	case "html":
		return HTMLBackend{}, nil
	case "json":
		return JSONBackend{}, nil
	}
	return nil, fmt.Errorf("report: unknown render format %q (have: %s)", name, strings.Join(Backends(), ", "))
}

// RenderTo encodes doc to w with the given backend (nil selects text).
func RenderTo(w io.Writer, doc *Document, b Backend) error {
	if b == nil {
		b = TextBackend{}
	}
	return b.Render(w, doc)
}
