package report

import (
	"fmt"
	"strings"

	"rrbus/internal/isa"
	"rrbus/internal/scenario"
)

// The full-text renderers: one per generator, each producing the
// complete terminal figure (header included) so a live scenario run and
// a JSONL replay print identical bytes.

// Fig2 renders the Fig. 2 timeline from the fig2 generator's recorded
// result.
func Fig2(jobs []scenario.Job, results []scenario.Result) (string, error) {
	f, err := Fig2From(jobs, results)
	if err != nil {
		return "", err
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== Fig 2: request with δ=%d on %s platform (ubd=%d) suffers γ=%d ==\n%s\n",
		f.Delta, cfg.Name, cfg.UBD(), f.Gamma, f.Timeline), nil
}

// Fig3 renders the γ(δ) matrix of Fig. 3.
func Fig3(jobs []scenario.Job, results []scenario.Result) (string, error) {
	return gammaFig("Fig 3: γ(δ) matrix", jobs, results)
}

// Fig4 renders the saw-tooth γ(δ) overlay of Fig. 4.
func Fig4(jobs []scenario.Job, results []scenario.Result) (string, error) {
	return gammaFig("Fig 4: saw-tooth γ(δ)", jobs, results)
}

func gammaFig(title string, jobs []scenario.Job, results []scenario.Result) (string, error) {
	rows, err := GammaRowsFrom(jobs, results)
	if err != nil {
		return "", err
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== %s on %s platform (ubd=%d) ==\n%s\n", title, cfg.Name, cfg.UBD(), RenderGammaRows(rows)), nil
}

// Fig5 renders the nop-insertion timelines of Fig. 5.
func Fig5(jobs []scenario.Job, results []scenario.Result) (string, error) {
	figs, err := Fig5From(jobs, results)
	if err != nil {
		return "", err
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig 5: nop insertion timelines on %s platform ==\n", cfg.Name)
	for _, f := range figs {
		fmt.Fprintf(&b, "-- k=%d (δ=%d) → γ=%d --\n%s", f.K, f.Delta, f.Gamma, f.Timeline)
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// Fig6a renders the ready-contender comparison of Fig. 6(a).
func Fig6a(jobs []scenario.Job, results []scenario.Result) (string, error) {
	d, err := Fig6aFrom(jobs, results)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== Fig 6a: ready contenders at scua requests (%d workloads) ==\n%s\nworkloads: %s\n\n",
		len(d.WorkloadNames), d.Render(), strings.Join(d.WorkloadNames, ", ")), nil
}

// Fig6b renders the contention-delay histograms of Fig. 6(b).
func Fig6b(jobs []scenario.Job, results []scenario.Result) (string, error) {
	rows, err := Fig6bFrom(jobs, results)
	if err != nil {
		return "", err
	}
	cfg, err := buildCfg(jobs[0])
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig 6b: contention-delay histograms of rsk vs %d rsk ==\n", cfg.Cores-1)
	for _, r := range rows {
		b.WriteString(r.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Fig7 renders a single recorded slowdown sweep (the generic fig7
// generator).
func Fig7(jobs []scenario.Job, results []scenario.Result) (string, error) {
	pts, err := SweepPointsFrom(jobs, results)
	if err != nil {
		return "", err
	}
	typ, _, err := parseRSKNop(jobs[0].Scenario.Workload.Scua)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== Fig 7: rsk-nop(%s) slowdown sweep (%s) ==\n%s\n",
		typ, results[0].Platform, RenderSweep(pts)), nil
}

// Fig7a renders the two-architecture load sweep of Fig. 7(a).
func Fig7a(jobs []scenario.Job, results []scenario.Result) (string, error) {
	d, err := Fig7aFrom(jobs, results)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== Fig 7a: rsk-nop(load) slowdown sweep (%s & %s) ==\n%s\n",
		results[0].Platform, results[len(results)-1].Platform, d.Render()), nil
}

// Fig7b renders the store sweep of Fig. 7(b).
func Fig7b(jobs []scenario.Job, results []scenario.Result) (string, error) {
	d, err := Fig7bFrom(jobs, results)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== Fig 7b: rsk-nop(store) slowdown sweep (%s) ==\n%s\n",
		results[0].Platform, d.Render()), nil
}

// Derive renders the derivation report of a recorded derive block: the
// paper's methodology outcome next to Eq. 1 ground truth.
func Derive(jobs []scenario.Job, results []scenario.Result) (string, error) {
	d, err := DerivationFrom(jobs, results)
	if err != nil {
		return "", err
	}
	typ := "load"
	if d.Type == isa.OpStore {
		typ = "store"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "platform            %s (%d cores, lbus=%d)\n", d.Cfg.Name, d.Cfg.Cores, d.Cfg.BusLatency())
	fmt.Fprintf(&b, "access type         %s\n", typ)
	fmt.Fprintf(&b, "actual ubd (Eq.1)   %d cycles\n", d.Cfg.UBD())
	if d.Err != nil {
		fmt.Fprintf(&b, "derivation FAILED: %s\n", d.Err)
	} else if d.Res != nil {
		b.WriteString(d.Res.Report())
	}
	return b.String(), nil
}

// AblArb renders the E9a arbitration-policy ablation.
func AblArb(jobs []scenario.Job, results []scenario.Result) (string, error) {
	rows, err := ArbitersFrom(jobs, results)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== Ablation: arbitration policies ==\n%s\n", RenderArbiters(rows)), nil
}

// AblDeltaNop renders the E9b δnop-sampling ablation.
func AblDeltaNop(jobs []scenario.Job, results []scenario.Result) (string, error) {
	rows, err := DeltaNopsFrom(jobs, results)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== Ablation: δnop > 1 sampling ==\n%s\n", RenderDeltaNop(rows)), nil
}

// AblScaling renders the E9c geometry ablation.
func AblScaling(jobs []scenario.Job, results []scenario.Result) (string, error) {
	rows, err := ScalingFrom(jobs, results)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("== Ablation: Eq. 1 recovery across geometries ==\n%s\n", RenderScaling(rows)), nil
}
