package report

import (
	"fmt"
	"strconv"
	"strings"

	"rrbus/internal/analytic"
	"rrbus/internal/scenario"
	"rrbus/internal/stats"
	"rrbus/internal/trace"
)

// parseRSKNop decodes an "rsknop:<load|store>:<k>" task spec.
func parseRSKNop(spec string) (typ string, k int, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 || parts[0] != "rsknop" {
		return "", 0, fmt.Errorf("report: scua %q is not an rsknop spec", spec)
	}
	k, err = strconv.Atoi(parts[2])
	if err != nil {
		return "", 0, fmt.Errorf("report: scua %q: bad nop count: %w", spec, err)
	}
	return parts[1], k, nil
}

// deltaOf maps a job's rsknop scua spec to its injection time δ:
// rsknop:store:0 realizes δ = 0 via the store buffer's back-to-back
// drains; otherwise δ = DL1lat + k.
func deltaOf(j scenario.Job) (int, error) {
	cfg, err := buildCfg(j)
	if err != nil {
		return 0, err
	}
	typ, k, err := parseRSKNop(j.Scenario.Workload.Scua)
	if err != nil {
		return 0, err
	}
	if typ == "store" && k == 0 {
		return 0, nil
	}
	return cfg.DL1.Latency + k, nil
}

// GammaRowsFrom rebuilds the δ→γ rows of the gamma-table figures
// (Figs. 3 and 4) from recorded γ histograms: the measured γ is the mode
// of each job's histogram, the prediction is Eq. 2 at the job's δ.
func GammaRowsFrom(jobs []scenario.Job, results []scenario.Result) ([]GammaRow, error) {
	rows := make([]GammaRow, 0, len(results))
	for i, r := range results {
		delta, err := deltaOf(jobs[i])
		if err != nil {
			return nil, err
		}
		cfg, err := buildCfg(jobs[i])
		if err != nil {
			return nil, err
		}
		mode, _, ok := stats.FromDense(r.GammaHist).Mode()
		if !ok {
			return nil, fmt.Errorf("report: job %q recorded no requests", r.ID)
		}
		rows = append(rows, GammaRow{Delta: delta, GammaSim: mode, GammaAnalytic: analytic.Gamma(delta, cfg.UBD())})
	}
	return rows, nil
}

// timelineFrom builds one trace-bearing result's Timeline block: a
// steady-state scua request (the fourth-from-last captured grant of the
// scua's port) and the event window from `back` cycles before it became
// ready until its transaction completes.
func timelineFrom(j scenario.Job, r scenario.Result, back uint64) (Timeline, error) {
	_, k, err := parseRSKNop(j.Scenario.Workload.Scua)
	if err != nil {
		return Timeline{}, err
	}
	cfg, err := buildCfg(j)
	if err != nil {
		return Timeline{}, err
	}
	scuaCore := j.Scenario.Workload.ScuaCore
	var evs []trace.Event
	for _, e := range r.Trace {
		if e.Port == scuaCore {
			evs = append(evs, e)
		}
	}
	if len(evs) < 6 {
		return Timeline{}, fmt.Errorf("report: job %q recorded too few scua events (%d) — was Protocol.Trace set?", r.ID, len(evs))
	}
	// Steady state: a late event, clear of the window boundary.
	e := evs[len(evs)-4]
	from := uint64(0)
	if e.Ready >= back {
		from = e.Ready - back
	}
	return Timeline{
		K:      k,
		Delta:  cfg.DL1.Latency + k,
		Gamma:  int(e.Gamma),
		NPorts: cfg.Cores + 1,
		From:   from,
		To:     e.Grant + uint64(e.Occupancy) + 2,
		Events: r.Trace,
	}, nil
}

// fig renders the block into the legacy TimelineFig shape (the ASCII
// Gantt chart the in-process figures API returns).
func (t Timeline) fig() TimelineFig {
	return TimelineFig{
		K:        t.K,
		Delta:    t.Delta,
		Gamma:    t.Gamma,
		Timeline: trace.Timeline(t.Events, t.NPorts, t.From, t.To),
	}
}

// fig2Timeline extracts the fig2 generator's one Timeline block.
func fig2Timeline(jobs []scenario.Job, results []scenario.Result) (Timeline, error) {
	if len(results) != 1 {
		return Timeline{}, fmt.Errorf("report: fig2 expects 1 result, have %d", len(results))
	}
	return timelineFrom(jobs[0], results[0], 4)
}

// Fig2From rebuilds the Fig. 2 timeline from the fig2 generator's one
// recorded trace-bearing result.
func Fig2From(jobs []scenario.Job, results []scenario.Result) (TimelineFig, error) {
	tl, err := fig2Timeline(jobs, results)
	if err != nil {
		return TimelineFig{}, err
	}
	return tl.fig(), nil
}

// fig5Timelines extracts the fig5 generator's Timeline blocks, one per
// recorded trace-bearing result.
func fig5Timelines(jobs []scenario.Job, results []scenario.Result) ([]Timeline, error) {
	blocks := make([]Timeline, 0, len(results))
	for i, r := range results {
		tl, err := timelineFrom(jobs[i], r, 6)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, tl)
	}
	return blocks, nil
}

// Fig5From rebuilds the Fig. 5 nop-insertion timelines, one per recorded
// trace-bearing result.
func Fig5From(jobs []scenario.Job, results []scenario.Result) ([]TimelineFig, error) {
	blocks, err := fig5Timelines(jobs, results)
	if err != nil {
		return nil, err
	}
	figs := make([]TimelineFig, 0, len(blocks))
	for _, tl := range blocks {
		figs = append(figs, tl.fig())
	}
	return figs, nil
}

// Fig6aFrom rebuilds the Fig. 6(a) ready-contender comparison from the
// fig6a generator's recorded histograms: the first rows are the random
// EEMBC-like workloads, the final row is the rsk reference. The fold
// follows job order, so the floating-point accumulation matches a live
// streamed run bit for bit.
func Fig6aFrom(jobs []scenario.Job, results []scenario.Result) (*Fig6aData, error) {
	if len(results) < 2 {
		return nil, fmt.Errorf("report: fig6a expects EEMBC rows plus the rsk row, have %d", len(results))
	}
	nsets := len(results) - 1
	// The core count comes from the declarative platform spec, not the
	// recorded row, so recordings made before Result carried Cores still
	// render correctly.
	cfg, err := buildCfg(jobs[len(jobs)-1])
	if err != nil {
		return nil, err
	}
	nports := cfg.Cores + 1
	d := &Fig6aData{
		EEMBCFrac: make([]float64, nports),
		RSKFrac:   make([]float64, nports),
	}
	for _, r := range results[:nsets] {
		var total uint64
		for _, c := range r.ContendersHist {
			total += c
		}
		if total == 0 {
			continue
		}
		for i, c := range r.ContendersHist {
			if i < len(d.EEMBCFrac) {
				d.EEMBCFrac[i] += float64(c) / float64(total) / float64(nsets)
			}
		}
	}
	rsk := results[len(results)-1]
	var total uint64
	for _, c := range rsk.ContendersHist {
		total += c
	}
	for i, c := range rsk.ContendersHist {
		if i < len(d.RSKFrac) && total > 0 {
			d.RSKFrac[i] = float64(c) / float64(total)
		}
	}
	for _, j := range jobs[:nsets] {
		names := append([]string{j.Scenario.Workload.Scua}, j.Scenario.Workload.Contenders...)
		d.WorkloadNames = append(d.WorkloadNames, strings.Join(names, "+"))
	}
	return d, nil
}

// Fig6bFrom rebuilds the per-architecture contention-delay histograms of
// Fig. 6(b) from recorded γ histograms.
func Fig6bFrom(jobs []scenario.Job, results []scenario.Result) ([]Fig6bData, error) {
	rows := make([]Fig6bData, 0, len(results))
	for i, r := range results {
		cfg, err := buildCfg(jobs[i])
		if err != nil {
			return nil, err
		}
		h := stats.FromDense(r.GammaHist)
		if h.Total() == 0 {
			return nil, fmt.Errorf("report: job %q recorded no requests — was Protocol.Gammas set?", r.ID)
		}
		mode, frac, _ := h.Mode()
		maxG, _ := h.Max()
		rows = append(rows, Fig6bData{
			Arch:      r.Platform,
			Hist:      h,
			UBDm:      maxG,
			ModeGamma: mode,
			ModeFrac:  frac,
			ActualUBD: cfg.UBD(),
			SimCycles: r.TotalCycles,
			counts:    r.GammaHist,
		})
	}
	return rows, nil
}

// SweepPointsFrom rebuilds a slowdown sweep from isolation-paired
// recorded results: one point per job, k taken from the job's rsknop
// spec.
func SweepPointsFrom(jobs []scenario.Job, results []scenario.Result) ([]SweepPoint, error) {
	pts := make([]SweepPoint, 0, len(results))
	for i, r := range results {
		_, k, err := parseRSKNop(jobs[i].Scenario.Workload.Scua)
		if err != nil {
			return nil, err
		}
		pts = append(pts, SweepPoint{K: k, Slowdown: r.Slowdown, Utilization: r.Utilization})
	}
	return pts, nil
}

// groupByPrefix splits a job list into runs of consecutive jobs sharing
// the ID prefix before the final "/" segment ("fig7a/ref/k=12" →
// "fig7a/ref"), pairing each run with its results.
type group struct {
	prefix  string
	jobs    []scenario.Job
	results []scenario.Result
}

func groupByPrefix(jobs []scenario.Job, results []scenario.Result) []group {
	var out []group
	for i := range jobs {
		prefix := jobs[i].ID
		if cut := strings.LastIndex(prefix, "/"); cut >= 0 {
			prefix = prefix[:cut]
		}
		if n := len(out); n > 0 && out[n-1].prefix == prefix {
			out[n-1].jobs = append(out[n-1].jobs, jobs[i])
			out[n-1].results = append(out[n-1].results, results[i])
			continue
		}
		// Full-capacity re-slices would let append clobber the caller's
		// next element; cap both views at one.
		out = append(out, group{prefix: prefix, jobs: jobs[i : i+1 : i+1], results: results[i : i+1 : i+1]})
	}
	return out
}

// Fig7aFrom rebuilds the two-architecture load sweep of Fig. 7(a) from
// the fig7a generator's recorded results (the ref sweep followed by the
// var sweep).
func Fig7aFrom(jobs []scenario.Job, results []scenario.Result) (*Fig7aData, error) {
	gs := groupByPrefix(jobs, results)
	if len(gs) != 2 || len(gs[0].jobs) != len(gs[1].jobs) {
		return nil, fmt.Errorf("report: fig7a expects two equal-length sweeps, have %d groups", len(gs))
	}
	ref, err := SweepPointsFrom(gs[0].jobs, gs[0].results)
	if err != nil {
		return nil, err
	}
	vr, err := SweepPointsFrom(gs[1].jobs, gs[1].results)
	if err != nil {
		return nil, err
	}
	return &Fig7aData{Ref: ref, Var: vr, RefPeaks: PeaksOf(ref), VarPeaks: PeaksOf(vr)}, nil
}

// Fig7bFrom rebuilds the store sweep of Fig. 7(b), locating where the
// slowdown becomes identically zero (the store buffer hiding all
// contention).
func Fig7bFrom(jobs []scenario.Job, results []scenario.Result) (*Fig7bData, error) {
	pts, err := SweepPointsFrom(jobs, results)
	if err != nil {
		return nil, err
	}
	d := &Fig7bData{Points: pts, ZeroFromK: -1}
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].Slowdown != 0 {
			if i+1 < len(pts) {
				d.ZeroFromK = pts[i+1].K
			}
			break
		}
		if i == 0 {
			d.ZeroFromK = pts[0].K
		}
	}
	return d, nil
}

// ArbitersFrom rebuilds the E9a arbitration ablation: one derivation per
// recorded policy block.
func ArbitersFrom(jobs []scenario.Job, results []scenario.Result) ([]ArbiterRow, error) {
	blocks := groupByPrefix(jobs, results)
	rows := make([]ArbiterRow, 0, len(blocks))
	for _, b := range blocks {
		d, err := DerivationFrom(b.jobs, b.results)
		if err != nil {
			return nil, fmt.Errorf("report: block %q: %w", b.prefix, err)
		}
		arb := string(d.Cfg.Arbiter)
		row := ArbiterRow{Arbiter: arb, ActualUBD: d.Cfg.UBD()}
		if d.Err != nil {
			row.Err = d.Err.Error()
		}
		if d.Res != nil {
			row.DerivedUBDm = d.Res.UBDm
			row.PeriodK = d.Res.PeriodK
		}
		switch d.Cfg.Arbiter {
		case "rr":
			row.Note = "methodology applies: period = ubd"
		case "tdma":
			row.Note = "TDMA is time-composable: contended == isolation, flat slowdown, derivation refuses"
		case "fp":
			row.Note = fmt.Sprintf("high-priority scua waits only for the in-service transaction: period reads lbus=%d, not ubd", d.Cfg.BusLatency())
		case "lottery":
			row.Note = "random grants: no exact period, estimate is low-confidence"
		case "wrr":
			row.Note = "MBBA-like weights: single-outstanding cores cannot use extra slots (fall-through), " +
				"so saturation degenerates to plain RR and the period correctly reads (Nc-1)*lbus for loads; " +
				"multi-outstanding contenders (e.g. store buffers) could consume whole weight blocks and raise the true bound"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DeltaNopsFrom rebuilds the E9b δnop ablation: one derivation per
// recorded nop-latency block.
func DeltaNopsFrom(jobs []scenario.Job, results []scenario.Result) ([]DeltaNopRow, error) {
	blocks := groupByPrefix(jobs, results)
	rows := make([]DeltaNopRow, 0, len(blocks))
	for _, b := range blocks {
		d, err := DerivationFrom(b.jobs, b.results)
		if err != nil {
			return nil, fmt.Errorf("report: block %q: %w", b.prefix, err)
		}
		row := DeltaNopRow{NopLatency: d.Cfg.NopLatency, ActualUBD: d.Cfg.UBD()}
		if d.Err != nil {
			row.Err = d.Err.Error()
		}
		if d.Res != nil {
			row.DeltaNop = d.Res.DeltaNop
			row.DerivedUBDm = d.Res.UBDm
			row.PeriodTimesDnop = int(float64(d.Res.PeriodK)*d.Res.DeltaNop + 0.5)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScalingFrom rebuilds the E9c geometry ablation: one derivation per
// recorded (cores, lbus) block.
func ScalingFrom(jobs []scenario.Job, results []scenario.Result) ([]ScalingRow, error) {
	blocks := groupByPrefix(jobs, results)
	rows := make([]ScalingRow, 0, len(blocks))
	for _, b := range blocks {
		d, err := DerivationFrom(b.jobs, b.results)
		if err != nil {
			return nil, fmt.Errorf("report: block %q: %w", b.prefix, err)
		}
		row := ScalingRow{Cores: d.Cfg.Cores, LBus: d.Cfg.BusLatency(), ActualUBD: d.Cfg.UBD()}
		if d.Err != nil {
			row.Err = d.Err.Error()
		}
		if d.Res != nil {
			row.DerivedUBDm = d.Res.UBDm
		}
		rows = append(rows, row)
	}
	return rows, nil
}
