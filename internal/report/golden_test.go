package report_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rrbus/internal/report"
	"rrbus/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenCases is one cheap parameterization per generator (all 13) plus
// the generic results-table fallback ("mix" has no figure renderer).
// The golden bytes were recorded from the pre-Document renderers, so
// these cases pin the redesign's core invariant: Document + TextBackend
// reproduces the legacy text byte for byte.
var goldenCases = []struct {
	name   string
	gen    string
	params scenario.Params
}{
	{"fig2", "fig2", nil},
	{"fig3", "fig3", scenario.Params{"max_delta": 7}},
	{"fig4", "fig4", scenario.Params{"arch": "toy", "max_delta": 12}},
	{"fig5", "fig5", scenario.Params{"ks": []int{1, 6}}},
	{"fig6a", "fig6a", scenario.Params{"arch": "toy", "count": 2, "seed": 1}},
	{"fig6b", "fig6b", scenario.Params{"archs": []string{"toy"}}},
	{"fig7", "fig7", scenario.Params{"arch": "toy", "kmax": 8, "iters": 5}},
	{"fig7a", "fig7a", scenario.Params{"kmax": 12, "iters": 5}},
	{"fig7b", "fig7b", scenario.Params{"arch": "toy", "kmax": 10, "iters": 5}},
	{"derive", "derive", scenario.Params{"arch": "toy", "kmax": 20}},
	{"abl-arb", "abl-arb", scenario.Params{"arch": "toy", "kmax": 20}},
	{"abl-dnop", "abl-dnop", scenario.Params{"arch": "toy", "max_nop": 2, "kmax": 30}},
	{"abl-scaling", "abl-scaling", scenario.Params{"cores": []int{2}, "l2hits": []int{1}}},
	{"results-table", "mix", scenario.Params{"arch": "toy", "count": 2, "kmax": 4}},
}

// goldenRun expands and runs a golden case once per test binary
// invocation (several tests verify different backends over the same
// recorded results).
var goldenResults = map[string]struct {
	jobs    []scenario.Job
	results []scenario.Result
}{}

func goldenInputs(t *testing.T, gen string, params scenario.Params) ([]scenario.Job, []scenario.Result) {
	t.Helper()
	if got, ok := goldenResults[gen]; ok {
		return got.jobs, got.results
	}
	jobs := expand(t, gen, params)
	results, err := scenario.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	goldenResults[gen] = struct {
		jobs    []scenario.Job
		results []scenario.Result
	}{jobs, results}
	return jobs, results
}

// TestGoldenTextByteIdentity pins the text rendering of every generator
// (and the generic results-table fallback) to the committed golden bytes
// recorded before the Document redesign.
func TestGoldenTextByteIdentity(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			jobs, results := goldenInputs(t, tc.gen, tc.params)
			got, err := report.Render(tc.gen, jobs, results)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if got != string(want) {
				t.Errorf("text output drifted from the pre-redesign golden\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
