package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{OpNop, "nop"},
		{OpLoad, "ld"},
		{OpStore, "st"},
		{OpIALU, "alu"},
		{OpBranch, "br"},
		{Op(99), "op(99)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op(%d).String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestOpIsMem(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("loads and stores must be memory ops")
	}
	for _, op := range []Op{OpNop, OpIALU, OpBranch} {
		if op.IsMem() {
			t.Errorf("%v must not be a memory op", op)
		}
	}
}

func TestInstrString(t *testing.T) {
	if got := Load(0x1000).String(); got != "ld 0x1000" {
		t.Errorf("Load string = %q", got)
	}
	if got := Store(0x20).String(); got != "st 0x20" {
		t.Errorf("Store string = %q", got)
	}
	if got := IALU(3).String(); got != "alu#3" {
		t.Errorf("IALU(3) string = %q", got)
	}
	if got := IALU(0).String(); got != "alu" {
		t.Errorf("IALU(0) string = %q", got)
	}
	if got := Nop().String(); got != "nop" {
		t.Errorf("Nop string = %q", got)
	}
}

func TestConstructors(t *testing.T) {
	if in := Load(42); in.Op != OpLoad || in.Addr != 42 {
		t.Errorf("Load(42) = %+v", in)
	}
	if in := Store(7); in.Op != OpStore || in.Addr != 7 {
		t.Errorf("Store(7) = %+v", in)
	}
	if in := Branch(); in.Op != OpBranch {
		t.Errorf("Branch() = %+v", in)
	}
	if in := IALU(5); in.Op != OpIALU || in.Lat != 5 {
		t.Errorf("IALU(5) = %+v", in)
	}
}

func TestProgramValidate(t *testing.T) {
	var nilProg *Program
	if err := nilProg.Validate(); err == nil {
		t.Error("nil program must not validate")
	}
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Error("empty body must not validate")
	}
	p = &Program{Name: "misaligned", CodeBase: 2, Body: []Instr{Nop()}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "aligned") {
		t.Errorf("misaligned code base: got %v", err)
	}
	p = &Program{Name: "ok", CodeBase: 0x1000, Body: []Instr{Nop(), Branch()}}
	if err := p.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestBodyRequests(t *testing.T) {
	p := &Program{Body: []Instr{Load(0), Nop(), Store(4), Load(8), Branch()}}
	loads, stores := p.BodyRequests()
	if loads != 2 || stores != 1 {
		t.Errorf("BodyRequests = (%d, %d), want (2, 1)", loads, stores)
	}
}

func TestCodeFootprintAndAddrs(t *testing.T) {
	p := &Program{
		Name:     "layout",
		CodeBase: 0x4000,
		Setup:    []Instr{Load(0), Load(4)},
		Body:     []Instr{Nop(), Branch()},
	}
	if got := p.CodeFootprint(); got != 16 {
		t.Errorf("CodeFootprint = %d, want 16", got)
	}
	if got := p.InstrAddr(true, 0); got != 0x4000 {
		t.Errorf("setup[0] addr = %#x", got)
	}
	if got := p.InstrAddr(true, 1); got != 0x4004 {
		t.Errorf("setup[1] addr = %#x", got)
	}
	// Body instructions are laid out after setup.
	if got := p.InstrAddr(false, 0); got != 0x4008 {
		t.Errorf("body[0] addr = %#x", got)
	}
	if got := p.InstrAddr(false, 1); got != 0x400c {
		t.Errorf("body[1] addr = %#x", got)
	}
}

func TestInstrAddrMonotonic(t *testing.T) {
	// Property: body addresses are strictly increasing by InstrBytes.
	f := func(nSetup, nBody uint8) bool {
		p := &Program{
			Name:     "prop",
			CodeBase: 0x1000,
			Setup:    make([]Instr, int(nSetup)%64),
			Body:     make([]Instr, int(nBody)%64+1),
		}
		for i := 1; i < len(p.Body); i++ {
			if p.InstrAddr(false, i)-p.InstrAddr(false, i-1) != InstrBytes {
				return false
			}
		}
		return p.InstrAddr(false, 0) == p.CodeBase+uint64(len(p.Setup))*InstrBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
