// Package isa defines the minimal instruction set used by the simulated
// cores. The paper's kernels (rsk, rsk-nop) and the synthetic EEMBC-like
// workloads are expressed as programs over this ISA; the cpu package gives
// each operation its timing.
//
// The ISA is deliberately small: the contention phenomena under study depend
// only on when instructions issue requests to the bus, not on architectural
// state, so instructions carry no register semantics — only an opcode, an
// optional memory address, and an optional latency override.
package isa

import "fmt"

// Op enumerates the instruction classes the simulated core executes.
type Op uint8

const (
	// OpNop is a single-cycle filler instruction. rsk-nop uses it to
	// stretch the injection time between bus accesses.
	OpNop Op = iota
	// OpLoad reads one word. It accesses DL1 and, on a miss, issues a bus
	// request; the pipeline blocks until the data returns.
	OpLoad
	// OpStore writes one word. DL1 is write-through, so every store
	// eventually reaches the bus; the pipeline only blocks when the store
	// buffer is full.
	OpStore
	// OpIALU is an integer ALU operation with a configurable latency
	// (Instr.Lat, defaulting to the core's integer latency).
	OpIALU
	// OpBranch models loop-control overhead: a taken backward branch at
	// the end of a loop body.
	OpBranch
)

// String returns the conventional mnemonic for the opcode.
func (o Op) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpLoad:
		return "ld"
	case OpStore:
		return "st"
	case OpIALU:
		return "alu"
	case OpBranch:
		return "br"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Instr is one instruction of a simulated program.
type Instr struct {
	// Op selects the instruction class.
	Op Op
	// Addr is the byte address accessed by OpLoad/OpStore. Ignored for
	// other opcodes.
	Addr uint64
	// Lat overrides the core's default latency for OpIALU (in cycles).
	// Zero means "use the core default".
	Lat uint8
}

// String renders the instruction in a compact assembly-like form.
func (in Instr) String() string {
	if in.Op.IsMem() {
		return fmt.Sprintf("%s 0x%x", in.Op, in.Addr)
	}
	if in.Op == OpIALU && in.Lat > 0 {
		return fmt.Sprintf("%s#%d", in.Op, in.Lat)
	}
	return in.Op.String()
}

// Nop returns a nop instruction.
func Nop() Instr { return Instr{Op: OpNop} }

// Load returns a load from addr.
func Load(addr uint64) Instr { return Instr{Op: OpLoad, Addr: addr} }

// Store returns a store to addr.
func Store(addr uint64) Instr { return Instr{Op: OpStore, Addr: addr} }

// IALU returns an integer ALU instruction with latency lat cycles
// (0 = core default).
func IALU(lat uint8) Instr { return Instr{Op: OpIALU, Lat: lat} }

// Branch returns a loop-control branch instruction.
func Branch() Instr { return Instr{Op: OpBranch} }

// Program is a unit of work for one simulated core: an optional setup
// sequence executed once, followed by a body executed repeatedly.
//
// Programs used as the software component under analysis (scua) run the body
// a fixed number of times per measurement; contender programs loop forever
// ("rsk must not complete execution before the scua").
type Program struct {
	// Name identifies the program in reports and traces.
	Name string
	// CodeBase is the byte address of the first body instruction, used
	// for instruction fetch through IL1. Setup instructions are laid out
	// before the body.
	CodeBase uint64
	// Setup is executed once, before the first body iteration. Kernels
	// use it to warm the L2 cache.
	Setup []Instr
	// Body is the measured loop body.
	Body []Instr
}

// Validate reports whether the program is well formed.
func (p *Program) Validate() error {
	if p == nil {
		return fmt.Errorf("isa: nil program")
	}
	if len(p.Body) == 0 {
		return fmt.Errorf("isa: program %q has empty body", p.Name)
	}
	if p.CodeBase%4 != 0 {
		return fmt.Errorf("isa: program %q code base 0x%x not 4-byte aligned", p.Name, p.CodeBase)
	}
	return nil
}

// BodyRequests counts the data-memory instructions in one body iteration.
// For write-through caches every store is a bus request; loads are bus
// requests only when they miss DL1, which the caller must account for.
func (p *Program) BodyRequests() (loads, stores int) {
	for _, in := range p.Body {
		switch in.Op {
		case OpLoad:
			loads++
		case OpStore:
			stores++
		}
	}
	return loads, stores
}

// InstrBytes is the encoded size of one instruction, used to lay out code
// addresses for instruction fetch (SPARC V8-style fixed 4-byte encoding).
const InstrBytes = 4

// CodeFootprint returns the number of code bytes the program occupies
// (setup + body), used to check that kernels fit in IL1.
func (p *Program) CodeFootprint() uint64 {
	return uint64(len(p.Setup)+len(p.Body)) * InstrBytes
}

// InstrAddr returns the fetch address of instruction i, where setup
// instructions precede body instructions starting at CodeBase.
func (p *Program) InstrAddr(setup bool, i int) uint64 {
	if setup {
		return p.CodeBase + uint64(i)*InstrBytes
	}
	return p.CodeBase + uint64(len(p.Setup)+i)*InstrBytes
}
