// Package rrbus reproduces "Increasing Confidence on Measurement-Based
// Contention Bounds for Real-Time Round-Robin Buses" (Fernandez et al.,
// DAC 2015) as a library: a cycle-accurate NGMP-like multicore simulator,
// the paper's resource-stressing kernels (rsk, rsk-nop), and the
// measurement-based methodology that derives the round-robin upper-bound
// delay ubd from the saw-tooth period of rsk-nop slowdowns — without
// knowing any bus latency.
//
// # Quick start
//
//	cfg := rrbus.ReferenceNGMP()            // 4-core NGMP, ubd = 27
//	res, err := rrbus.DeriveUBD(cfg, rrbus.DeriveOptions{})
//	if err != nil { ... }
//	fmt.Println(res.UBDm)                   // 27, from measurements alone
//
// The derived bound pads execution-time bounds for measurement-based timing
// analysis: ETB = ExecTime_isolation + nr * ubdm, where nr is the task's
// bus-request count read from a PMC.
//
// # Layers
//
// The facade re-exports the layered implementation:
//
//   - internal/sim, cpu, cache, bus, mem: the simulated platform
//     (substitute for the authors' validated NGMP simulator + DRAMsim2)
//   - internal/kernel: rsk(t), rsk-nop(t,k) and the δnop nop-kernel
//   - internal/core: the derivation methodology (Eq. 3 period detection,
//     confidence checks), plus the naive det/nr baseline it improves on
//   - internal/workload: EEMBC-Autobench-like synthetic tasks
//   - internal/analytic: closed forms (Eq. 1 ubd, Eq. 2 γ(δ))
//   - internal/trace, stats, pmc: observation tooling
//   - internal/exp: the experiment engine that fans independent
//     simulations out across a worker pool
//
// Everything is deterministic and uses only the standard library.
//
// # Experiment engine
//
// Every artifact of the paper's evaluation — the figures, the summary
// table, the ablations — is a batch of independent cycle-accurate
// simulations. internal/exp runs such batches on a bounded worker pool
// (GOMAXPROCS workers by default) while keeping a strict determinism
// contract:
//
//   - results are folded back in job-index order, never completion order,
//     so a batch run with 1 worker and with N workers produces
//     byte-identical rendered output (internal/exp's determinism tests
//     regenerate real figures under both settings and compare bytes);
//   - each job builds its own System — no simulator state is shared
//     between workers;
//   - errors are deterministic: the lowest-indexed failing job wins.
//
// The batch CLIs (rrbus-figures, rrbus-derive, rrbus-bench) expose the
// pool as -workers; -workers 1 recovers fully serial execution on the
// calling goroutine (rrbus-sim runs a single simulation, so it has no
// batch to fan out). Derive fans its k-sweep out only when the Runner
// declares itself safe for concurrent measurements (ConcurrentSafe, which
// the simulator-backed SimRunner does); order-dependent runners such as
// NoisyRunner or a hardware board stay strictly serial.
//
// Inside each worker the simulator itself is allocation-free in steady
// state (pooled bus requests and memory transactions, dense histograms)
// and skips provably idle cycles: when every core is waiting on the bus
// or on a known-future latency, the clock jumps straight to the next
// event instead of executing no-op Steps. The fast path is exact — grant
// traces and measurements are bit-identical to cycle-by-cycle execution
// (see internal/sim's fast-forward equivalence tests) — and can be
// disabled per run with RunOpts.DisableFastForward.
package rrbus
