// Package rrbus reproduces "Increasing Confidence on Measurement-Based
// Contention Bounds for Real-Time Round-Robin Buses" (Fernandez et al.,
// DAC 2015) as a library: a cycle-accurate NGMP-like multicore simulator,
// the paper's resource-stressing kernels (rsk, rsk-nop), and the
// measurement-based methodology that derives the round-robin upper-bound
// delay ubd from the saw-tooth period of rsk-nop slowdowns — without
// knowing any bus latency.
//
// # Quick start: Plan → Run → Store → Document → Backend
//
// The public API is the measurement pipeline itself. A Plan compiles a
// declarative experiment into a content-addressed job list; a Session
// runs it, serving any job the results Store has already recorded
// instead of re-simulating it; DocumentFor rebuilds the paper's
// figures, tables and bounds from the recorded rows alone as a typed
// Document — an ordered list of blocks (headings, typed-column tables,
// sweep series, trace-event timelines, γ histograms, derived-bound
// summaries) — and a Backend encodes the Document as terminal text,
// a self-contained HTML page with inline SVG charts, or
// schema-versioned JSON:
//
//	plan, err := rrbus.GeneratorPlan("fig7", rrbus.Params{"arch": "ref", "kmax": 60})
//	if err != nil { ... }
//	store, err := rrbus.OpenDirStore("results")   // shareable, integrity-checked
//	if err != nil { ... }
//
//	sess := &rrbus.Session{Store: store}
//	results, err := sess.RunAll(plan)             // cold: simulates and records
//	if err != nil { ... }
//	doc, err := rrbus.DocumentFor(plan, results)  // the Fig. 7 sweep, from rows alone
//	if err != nil { ... }
//
//	err = rrbus.RenderTo(os.Stdout, doc, rrbus.TextBackend{})  // classic terminal bytes
//	err = rrbus.RenderTo(htmlFile, doc, rrbus.HTMLBackend{})   // single-file page, SVG charts
//	err = rrbus.RenderTo(jsonFile, doc, rrbus.JSONBackend{})   // machine-readable, versioned
//
// The JSON encoding is lossless: DecodeDocument reads it back into an
// identical Document, so an archived document re-renders through any
// backend without touching the original results. Running the same plan
// again — or any plan whose jobs overlap it, like a derivation sweep
// over the same k range — simulates only the delta:
//
//	warm := &rrbus.Session{Store: store}
//	results, err = warm.RunAll(plan)              // warm: zero simulations
//	fmt.Println(warm.Simulated(), warm.StoreHits())   // 0 60
//
// and builds byte-identical output, because every renderer consumes
// only recorded rows — the text backend is golden-tested to reproduce
// the pre-Document renderers byte for byte. One-call derivation is
// still there for the common case:
//
//	cfg := rrbus.ReferenceNGMP()            // 4-core NGMP, ubd = 27
//	res, err := rrbus.DeriveUBD(cfg, rrbus.DeriveOptions{})
//	if err != nil { ... }
//	fmt.Println(res.UBDm)                   // 27, from measurements alone
//
// The derived bound pads execution-time bounds for measurement-based timing
// analysis: ETB = ExecTime_isolation + nr * ubdm, where nr is the task's
// bus-request count read from a PMC.
//
// # Layers
//
// The facade re-exports the layered implementation:
//
//   - internal/sim, cpu, cache, bus, mem: the simulated platform
//     (substitute for the authors' validated NGMP simulator + DRAMsim2)
//   - internal/kernel: rsk(t), rsk-nop(t,k) and the δnop nop-kernel
//   - internal/core: the derivation methodology (Eq. 3 period detection,
//     confidence checks), plus the naive det/nr baseline it improves on
//   - internal/workload: EEMBC-Autobench-like synthetic tasks
//   - internal/analytic: closed forms (Eq. 1 ubd, Eq. 2 γ(δ))
//   - internal/trace, stats, pmc: observation tooling
//   - internal/exp: the experiment engine that fans independent
//     simulations out across a worker pool
//   - internal/scenario: the declarative measurement layer (JSON
//     scenarios, generators, canonical content hashing, JSONL recording)
//   - internal/store: the content-addressed results store (in-memory
//     and directory-backed) and the store-aware Session runner
//   - internal/report: the analysis layer — every figure/table/bound
//     rebuilt from recorded results as a typed Document, plus the
//     text/HTML/JSON render backends
//   - internal/figures: generation — expands generators, runs them,
//     hands the records to internal/report
//   - internal/serve: the bound-as-a-service HTTP layer over the store
//     (plan submission, status, documents, Prometheus metrics)
//
// Everything is deterministic and uses only the standard library.
//
// # Experiment engine
//
// Every artifact of the paper's evaluation — the figures, the summary
// table, the ablations — is a batch of independent cycle-accurate
// simulations. internal/exp runs such batches on a bounded worker pool
// (GOMAXPROCS workers by default) while keeping a strict determinism
// contract:
//
//   - results are folded back in job-index order, never completion order,
//     so a batch run with 1 worker and with N workers produces
//     byte-identical rendered output (internal/exp's determinism tests
//     regenerate real figures under both settings and compare bytes);
//   - each job builds its own System — no simulator state is shared
//     between workers;
//   - errors are deterministic: the lowest-indexed failing job wins.
//
// The batch CLIs (rrbus-figures, rrbus-derive, rrbus-bench) expose the
// pool as -workers; -workers 1 recovers fully serial execution on the
// calling goroutine (rrbus-sim runs a single simulation, so it has no
// batch to fan out). Derive fans its k-sweep out only when the Runner
// declares itself safe for concurrent measurements (ConcurrentSafe, which
// the simulator-backed SimRunner does); order-dependent runners such as
// NoisyRunner or a hardware board stay strictly serial.
//
// Inside each worker the simulator itself is allocation-free in steady
// state (pooled bus requests and memory transactions, dense histograms)
// and event-driven: instead of ticking every component every cycle,
// each component reports the next cycle at which its state can change
// (a core's stall horizon, the bus's next completion or earliest
// deferred submission, the memory controller's next transaction edge),
// the scheduler takes the minimum, and the clock jumps straight there —
// ticking only the components that are actually due. Stalls in between
// are charged in closed form, and a core that discovers a cache miss
// while its bus port is free registers the request for its future ready
// cycle ("deferred submission") rather than burning steps walking up to
// it. rrbus-bench reports the resulting dead-time elimination as
// cycles_per_step — simulated cycles per executed step, typically 5–9×
// on the paper's workloads.
//
// The event core is exact, not approximate: grant traces, γ histograms,
// PMC snapshots, per-core stall counters and every Measurement field
// are bit-identical to the cycle-by-cycle loop, and the legacy loop is
// kept as the oracle behind that guarantee. internal/sim's equivalence
// suite diffs the two modes over seeded random workload mixes under
// round-robin, WRR and TDMA arbitration, and CI diffs the recorded
// JSONL rows of a whole scenario run between the modes byte for byte.
// Fall back to cycle-by-cycle execution when you want it: per run with
// RunOpts.DisableFastForward, per System with SetFastForward(false),
// process-wide with the rrbus-sim -no-fast-forward flag. The main
// reason to fall back is observation granularity — a RunUntil predicate
// is probed once per executed step, so a predicate that compares
// Cycle() against a threshold can observe the clock after it has
// already jumped past that threshold. Express run-until conditions in
// simulated state (iterations retired, a counter reaching a value) and
// pass cycle limits as maxCycles; sim.CheckPredicates turns the footgun
// into a panic in tests. Runs of consecutive same-latency instructions
// that cannot touch the bus (nops, IALU and branch stretches) execute
// as one batched step so the jumps compound; the equivalence tests
// cover the batching too.
//
// # Engine modes
//
// The simulator has three engine modes, each a strict optimization of the
// previous with bit-identical results:
//
//   - cycle-by-cycle: the legacy oracle loop; every component ticks every
//     cycle (RunOpts.DisableFastForward / SetFastForward(false) /
//     rrbus-sim -no-fast-forward);
//   - event-driven: the scheduler jumps from event to event (the default
//     substrate; RunOpts.DisableSteadyState / SetSteadyState(false) /
//     rrbus-sim -no-steady-state selects it alone);
//   - steady-state memoization: on top of event-driven execution, the
//     engine fingerprints the complete architectural state at the
//     measured core's iteration boundaries; when a fingerprint recurs
//     and repeats once more at the same distance with identical
//     observable deltas, the system is in a periodic fixed point and
//     whole periods are extrapolated in closed form — counters advance
//     by multiples of the verified per-period delta, every absolute
//     cycle shifts by the leap — instead of being simulated (the
//     default).
//
// The determinism guarantee is unconditional: a leap happens only after
// a full-state recurrence (cores, store buffers, cache sets and
// replacement order, bus arbiter and queues, memory-controller edges,
// scheduler wakes) is verified over two consecutive periods, and a
// deterministic simulator that revisits a state must replay it, so the
// extrapolated span is exactly what execution would have produced. The
// three-way equivalence suite diffs full Measurements (γ and contender
// histograms and PMCs included) across all modes, and CI records a
// scenario in all three and compares the JSONL bytes. Workloads that
// never settle into a period (aperiodic mixes) simply never leap — a
// bounded observation budget then switches the detector off. Runs that
// need exact per-event observation disable memoization automatically:
// any TraceLimit or OnGrant/OnSubmit hook forces every event to
// execute. rrbus-bench reports the effect as extrapolated_cycles /
// periods_leapt / extrapolated_ratio next to cycles_per_step.
//
// # Scenarios, streaming and sharding
//
// internal/scenario adds a declarative layer on top: a Scenario is a
// JSON document naming the platform (stock ref/var/toy plus overrides —
// geometry, latencies, arbitration policy including WRR weights and TDMA
// slots), the per-core workloads (the rsk:load / rsknop:store:12 /
// profile task-spec grammar of internal/workload), and the measurement
// protocol. Jobs pair a scenario with an optional isolation run; named
// generators (fig3, fig4, fig6a, fig6b, fig7, derive, abl-scaling,
// abl-arb) expand parameters into the job lists behind each paper
// figure, ablation and derivation sweep — so arbitrary user-defined
// experiments run from a file, with no code edits.
//
// Execution is streaming: exp.Stream delivers each job's result to an
// exp.Sink in job-index order as soon as its predecessors are delivered,
// not after the batch — a JSONL file fills while later jobs still run.
// exp.Shard{Index, Count} deterministically selects every Count-th job,
// so one job list splits across machines:
//
//	rrbus-figures -scenario sweep.json -shard 0/2 -out s0.jsonl   # A
//	rrbus-figures -scenario sweep.json -shard 1/2 -out s1.jsonl   # B
//	rrbus-figures -merge -out merged.jsonl s0.jsonl s1.jsonl
//
// Every JSONL row carries its job index, rows are emitted in index
// order, and each row's bytes depend only on its job — so the merged
// shard files are byte-identical to an unsharded run's output (CI proves
// it on a Fig. 7 sweep every push). rrbus-derive shards the same way:
// its -merge mode reassembles the slowdown series from shard files and
// runs the period detection (core.DeriveFromSeries) over the merged
// measurements. rrbus-bench guards the performance trajectory of all of
// this: -compare fails on a >10% simcycles/s regression against
// BENCH_sim.json and -append accumulates a trend entry per PR.
//
// # Results-first analysis: simulate once, analyze forever
//
// Measurement and analysis are fully decoupled. The measurement side
// (internal/scenario + internal/exp) produces recorded results — one
// self-describing row per job, optionally carrying γ histograms and a
// bounded bus-event trace window (Protocol.Trace → sim.RunOpts.
// TraceLimit → Measurement.Trace) for the timeline figures. The
// analysis side (internal/report) is a set of pure renderers over
// (jobs, results) that build typed Documents: gamma tables, timelines,
// histograms, sweeps, ablation tables and derived bounds are all
// rebuilt from the records alone — report never calls sim.Run, and
// bound derivation re-runs only core.DeriveFromSeries with δnop taken
// from the in-band calibration row every derivation-shaped generator
// emits.
//
// Presentation is a separate, final stage: a Backend encodes a
// Document, and the CLIs expose the choice as -format text|html|json
// (rrbus-figures, rrbus-derive, and rrbus-sim's scenario table). The
// text backend reproduces the pre-Document output byte for byte —
// golden tests pin every generator — so the byte-identity contract
// survives the redesign; the HTML backend draws fig2/fig5 timelines
// and fig7* sweeps as inline SVG in one self-contained file; the JSON
// backend carries a document schema version mirroring the Result row's,
// and rrbus-figures -doc re-renders a saved JSON document through any
// backend.
//
// Because the job list is a pure function of the plan and every
// renderer consumes only records, rendering is replayable: rrbus-figures
// and rrbus-derive accept -from <results.jsonl> and reproduce the live
// run's output byte for byte without simulating (CI replays a recorded
// sweep and cmp's the bytes every push). The in-process figures
// (internal/figures, the -fig flags, the benchmarks) run through exactly
// the same path — expand generator, record results, render — so the
// live artifacts and the archived ones can never drift apart.
//
// # The results store: measure once, reuse everywhere
//
// Recorded rows are also reusable across runs and plans. Every Job has
// a content hash — a sha256 over the canonicalized scenario (labels
// stripped, build defaults made explicit) plus the isolation pairing —
// and a compiled Plan hashes its ordered job list. A Store keys rows by
// job hash: the in-memory MemStore for in-process pipelines, the
// directory-backed DirStore (integrity-checked entries under
// jobs/<hh>/<hash>.json plus per-plan manifests under plans/) for
// sharing across processes and machines. A Session consults the store
// before simulating, records fresh rows as they stream, and counts
// hits vs simulations; since job hashes ignore labeling, a derivation
// sweep reuses the rows a Fig. 7 sweep recorded even though their job
// IDs differ. Stored entries carry a checksum and a schema version: a
// bit-flipped entry or an archive written by a newer build surfaces as
// an error, never as a silently wrong bound. The CLIs expose all of
// this as -store <dir>; CI re-runs a sweep against a warm store every
// push and asserts it simulates nothing while rendering identical
// bytes.
//
// The store is auditable: cmd/rrbus-store lists a directory's recorded
// plan manifests with their current row coverage (`rrbus-store ls`) and
// re-verifies every entry's integrity checksum, filing and schema
// (`rrbus-store verify`, nonzero exit on corruption) — the audit the
// "measure once" contract rests on.
//
// # Resilience: cancellation, self-healing, retries
//
// Long sweeps fail in boring ways — a Ctrl-C, a bit-flipped archive
// entry, a flaky network filesystem — and because every row is
// re-derivable from its content-addressed scenario, none of them need
// to cost more than the rows actually lost.
//
// Cancellation is graceful drain. Every pipeline entry point has a
// context-taking form (Session.RunContext, RunAllContext,
// RunToFileContext; exp.Stream and friends underneath): when the
// context is cancelled, no new jobs launch, in-flight jobs finish, and
// the completed contiguous prefix of rows is delivered to the sink —
// and recorded in the store — before ctx.Err() is returned. The CLIs
// wire this to SignalContext: the first SIGINT/SIGTERM drains, prints
// the partial-progress store summary and exits 130; a second signal
// kills the process. Because completed rows were flushed, re-running
// the same command resumes warm and simulates only the unfinished
// jobs.
//
// Corruption heals instead of failing. When a Session reads a store
// entry whose integrity checksum no longer matches (CorruptError), and
// the store can quarantine (DirStore, MemStore), the damaged entry is
// moved to quarantine/<hash>.json alongside a <hash>.reason file, the
// job re-simulates as if it were a store miss, and the fresh row is
// recorded in the entry's place — the sweep completes byte-identical
// to a clean run, with Session.Quarantined and Session.Repaired
// counting the healings. Entries written by a newer schema are
// deliberately NOT healed: that data is valid, this build just cannot
// read it, so it surfaces as an error. rrbus-store repair performs the
// same healing offline for a whole directory (quarantining damaged and
// misfiled entries, then re-simulating everything missing from the
// plan manifests that recorded their spec), and rrbus-store gc lists
// and drops the quarantined debris once its hashes hold healthy rows
// again.
//
// Transient store I/O errors retry with exponential backoff. A
// Session with a RetryPolicy ({Max, BaseDelay}; DefaultRetry is
// 3 × 25ms, the CLIs' setting) retries reads and writes that fail with
// a TransientError, with deterministic ±25% jitter derived from the
// job hash — corruption and schema errors are never retried, they have
// their own paths above. Session.Retried counts the recoveries, and
// every store error a Session reports names the job ID and the content
// hash of the entry involved.
//
// All of it is testable under injected faults: FaultyStore wraps any
// Store and deterministically injects transient errors, latency and
// read-side corruption every Nth operation (counter-based, so a
// schedule is reproducible); the chaos tests prove sweeps complete
// byte-identical under faults, and rrbus-bench -faults runs the same
// harness as a benchmark.
//
// # Serving: the store over HTTP
//
// NewServer turns a store into a long-running bound service —
// cmd/rrbus-serve is the thin daemon over it. Clients POST the same
// plan JSON a scenario file holds; the server compiles it, diffs the
// job hashes against the store, and simulates only the missing rows
// through a bounded Session (ServeOptions caps workers per session and
// concurrently simulating plans):
//
//	POST /v1/plans             submit a plan; 202 + status JSON
//	GET  /v1/plans             list submitted plans
//	GET  /v1/plans/{hash}      status + live Session counters/gauges
//	GET  /v1/plans/{hash}/doc  rendered document (?format=text|html|json)
//	GET  /v1/store/plans       the `rrbus-store ls` audit over HTTP
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz              liveness
//
// Warm versus cold is the whole point. A plan whose rows are all
// recorded — by a previous submission, a CLI sweep against the same
// directory, or a shard merged in from another machine — serves its
// document with zero simulation, byte-identical to the CLI render of
// the same plan, with the plan content hash as the ETag. A cold or
// partial plan simulates exactly the missing hashes; poll the status
// endpoint (queued → simulating → complete, with the Session's
// Simulated/StoreHits/Quarantined/Repaired counts) until the document
// is ready. Submissions are doubly deduplicated: a plan already queued
// or running absorbs resubmissions, and overlapping plans share a
// JobDedup claim table so two clients submitting at once never
// simulate the same job hash twice. /metrics exposes the same Session
// counters plus simulator-core throughput (cycles, extrapolated
// cycles, cycles/s) in the Prometheus text format with no dependency.
//
// Shutdown is the store section's graceful drain, served: on the first
// SIGINT/SIGTERM rrbus-serve stops listening, queued plans are marked
// interrupted, running sessions finish their in-flight jobs (completed
// rows stay recorded — resubmitting resumes warm), and Drain returns
// the summed counters for the exit report. A second signal kills. The
// /healthz probe flips to 503 the moment the drain begins, before the
// listener closes, so load balancers and workers stop routing to a
// dying server while its in-flight work lands.
//
// # Distribution: scattering a sweep across machines
//
// A Server started with ServeOptions.Distribute is a coordinator: a
// submitted plan's missing job hashes go to a lease queue instead of a
// local session, and any number of Workers (cmd/rrbus-worker) pull
// them over three endpoints:
//
//	POST /v1/work/register     announce a worker; returns lease terms
//	POST /v1/work/lease        lease a batch of compiled jobs + hashes
//	POST /v1/work/results      deliver rows; renew or release the lease
//	GET  /v1/store/jobs        list stored row hashes (the sync diff)
//	POST /v1/store/jobs        push rows directly into the store
//	POST /v1/store/fetch       fetch rows by hash (the pull side)
//
// A worker runs its leased jobs through an ordinary local store-aware
// Session — retry, quarantine and healing semantics unchanged, and a
// Dir-backed worker store doubles as a warm cache — and streams the
// rows back, each delivery renewing its lease. The protocol leans
// entirely on content addressing. Idempotence: rows are keyed by job
// content hash and every honest writer produces the same bytes, so a
// double delivery is a duplicate, not a conflict. Integrity: a wire
// row carries the store's own checksum over the canonical row bytes,
// re-verified before ingest; a corrupted transfer is rejected and its
// job requeued, never recorded. At-least-once completion: leases have
// deadlines, a killed worker's lease expires and its un-ingested jobs
// requeue automatically (a draining worker releases its lease
// explicitly, requeueing at once), so a crash never strands a sweep.
// Version skew is refused at the edge — a worker whose build hashes a
// leased job differently declines it rather than record rows under
// addresses the coordinator never asked for.
//
// Byte-identity survives distribution: a plan simulated by a
// coordinator plus any number of workers — including workers killed
// mid-sweep — renders exactly the bytes a single-process run produces,
// because both read the same rows back out of the same store.
//
// PushStore and PullStore (rrbus-store push/pull) sync two stores by
// hash delta: list the remote's hashes, diff against the local store,
// transfer only the missing rows, checksum-verified in both
// directions. A pushed row that satisfies a queued job completes it
// directly — seeding a coordinator from a warm cache means the fleet
// only ever simulates genuinely new work. See examples/dist for the
// whole fabric driven in-process.
package rrbus
