// Package rrbus reproduces "Increasing Confidence on Measurement-Based
// Contention Bounds for Real-Time Round-Robin Buses" (Fernandez et al.,
// DAC 2015) as a library: a cycle-accurate NGMP-like multicore simulator,
// the paper's resource-stressing kernels (rsk, rsk-nop), and the
// measurement-based methodology that derives the round-robin upper-bound
// delay ubd from the saw-tooth period of rsk-nop slowdowns — without
// knowing any bus latency.
//
// # Quick start
//
//	cfg := rrbus.ReferenceNGMP()            // 4-core NGMP, ubd = 27
//	res, err := rrbus.DeriveUBD(cfg, rrbus.DeriveOptions{})
//	if err != nil { ... }
//	fmt.Println(res.UBDm)                   // 27, from measurements alone
//
// The derived bound pads execution-time bounds for measurement-based timing
// analysis: ETB = ExecTime_isolation + nr * ubdm, where nr is the task's
// bus-request count read from a PMC.
//
// # Layers
//
// The facade re-exports the layered implementation:
//
//   - internal/sim, cpu, cache, bus, mem: the simulated platform
//     (substitute for the authors' validated NGMP simulator + DRAMsim2)
//   - internal/kernel: rsk(t), rsk-nop(t,k) and the δnop nop-kernel
//   - internal/core: the derivation methodology (Eq. 3 period detection,
//     confidence checks), plus the naive det/nr baseline it improves on
//   - internal/workload: EEMBC-Autobench-like synthetic tasks
//   - internal/analytic: closed forms (Eq. 1 ubd, Eq. 2 γ(δ))
//   - internal/trace, stats, pmc: observation tooling
//
// Everything is deterministic and uses only the standard library.
package rrbus
