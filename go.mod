module rrbus

go 1.24
