package rrbus

// The distribution surface of the pipeline: a coordinator/worker
// protocol over the content-addressed store. A Server started with
// ServeOptions.Distribute leases missing job hashes to Workers, ingests
// their rows idempotently with integrity checks, and requeues expired
// leases automatically; PushStore/PullStore sync two stores by hash
// delta. See the "Distribution" section of doc.go; cmd/rrbus-worker is
// the thin daemon over exactly this API.

import (
	"context"
	"net/http"

	"rrbus/internal/dist"
)

type (
	// Worker runs leased job batches from a distribute-mode Server
	// through a local store-aware Session and streams the rows back.
	// Create with NewWorker, run with Run; cancelling the context
	// (SignalContext in the daemon) drains gracefully.
	Worker = dist.Worker
	// WorkerOptions configure a Worker (name, local store, simulation
	// workers, batch size, poll interval, retry policy).
	WorkerOptions = dist.WorkerOptions
	// WorkerSummary is a drained worker's totals (leases, rows shipped,
	// local session counters).
	WorkerSummary = dist.WorkerSummary
	// WorkLease is a batch of jobs granted to a worker under a deadline.
	WorkLease = dist.Lease
	// WorkJobSpec is one leased unit: a compiled job plus the content
	// hash its row is expected under.
	WorkJobSpec = dist.JobSpec
	// WorkResultRow is one measurement row on the wire: job hash,
	// canonical row bytes and the store integrity checksum over them.
	WorkResultRow = dist.ResultRow
	// WorkIngest is a row delivery and/or lease renewal/release request.
	WorkIngest = dist.IngestRequest
	// WorkIngestReport reports what ingest did with a delivery.
	WorkIngestReport = dist.IngestResponse
	// StoreSyncReport is the outcome of a PushStore/PullStore transfer.
	StoreSyncReport = dist.SyncReport
	// SyncableStore is a store that can enumerate its row hashes — what
	// push/pull diff against; MemStore and DirStore both qualify.
	SyncableStore = dist.Syncable
)

// NewWorker returns a worker for the distribute-mode server at base
// (e.g. "http://host:8077").
func NewWorker(base string, opts WorkerOptions) *Worker { return dist.NewWorker(base, opts) }

// PushStore transfers the rows local holds and the server at base does
// not — delta only, diffed by content hash. A nil client uses a default.
func PushStore(ctx context.Context, local SyncableStore, base string, client *http.Client) (*StoreSyncReport, error) {
	return dist.Push(ctx, local, base, client)
}

// PullStore transfers the rows the server at base holds and local does
// not, verifying every row's integrity checksum before recording it.
func PullStore(ctx context.Context, local SyncableStore, base string, client *http.Client) (*StoreSyncReport, error) {
	return dist.Pull(ctx, local, base, client)
}

// WireResultRow packages a row for transfer with its store integrity
// checksum (the form PushStore ships and a Server ingests).
func WireResultRow(jobHash string, r Result) (WorkResultRow, error) {
	return dist.WireRow(jobHash, r)
}

// DecodeResultRow verifies a wire row's checksum and schema and decodes
// it — the ingest-side integrity gate, exported for custom transports.
func DecodeResultRow(row WorkResultRow) (Result, error) { return dist.DecodeRow(row) }
