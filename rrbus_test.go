package rrbus_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rrbus"
)

func TestFacadeConfigs(t *testing.T) {
	ref := rrbus.ReferenceNGMP()
	if ref.UBD() != 27 || ref.Cores != 4 {
		t.Errorf("reference: ubd=%d cores=%d", ref.UBD(), ref.Cores)
	}
	v := rrbus.VariantNGMP()
	if v.DL1.Latency != 4 {
		t.Error("variant DL1 latency")
	}
	s := rrbus.ScaledConfig(ref, 6, 3, 6)
	if s.UBD() != 45 {
		t.Errorf("scaled ubd = %d", s.UBD())
	}
}

func TestFacadeAnalytic(t *testing.T) {
	if rrbus.AnalyticUBD(4, 9) != 27 {
		t.Error("Eq. 1")
	}
	if rrbus.AnalyticGamma(1, 27) != 26 {
		t.Error("Eq. 2")
	}
	if rrbus.AnalyticGamma(0, 6) != 6 {
		t.Error("Eq. 2 at δ=0")
	}
}

func TestFacadeProfiles(t *testing.T) {
	ps := rrbus.EEMBCProfiles()
	if len(ps) != 16 {
		t.Fatalf("profiles = %d", len(ps))
	}
	p, ok := rrbus.EEMBCProfile("matrix")
	if !ok {
		t.Fatal("matrix profile missing")
	}
	prog, err := p.Build(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Validate() != nil {
		t.Fatal("built program invalid")
	}
	sets := rrbus.RandomTaskSets(3, 4, 9)
	if len(sets) != 3 || len(sets[0].Names) != 4 {
		t.Fatal("task sets wrong")
	}
}

func TestFacadeKernelsAndRun(t *testing.T) {
	cfg := rrbus.ReferenceNGMP()
	b := rrbus.NewKernelBuilder(cfg)
	scua, err := b.RSK(0, rrbus.OpLoad)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rrbus.RunIsolation(cfg, scua, rrbus.RunOpts{WarmupIters: 2, MeasureIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.Cycles == 0 {
		t.Error("empty measurement")
	}

	var cont []*rrbus.Program
	for c := 1; c < cfg.Cores; c++ {
		p, err := b.RSK(c, rrbus.OpLoad)
		if err != nil {
			t.Fatal(err)
		}
		cont = append(cont, p)
	}
	mc, err := rrbus.Run(cfg, rrbus.Workload{Scua: scua, Contenders: cont},
		rrbus.RunOpts{WarmupIters: 2, MeasureIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Cycles <= m.Cycles {
		t.Error("contention must slow the scua")
	}
}

func TestFacadeDeriveEndToEnd(t *testing.T) {
	res, err := rrbus.DeriveUBD(rrbus.ReferenceNGMP(), rrbus.DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.UBDm != 27 {
		t.Errorf("derived %d", res.UBDm)
	}
	nv, err := rrbus.NaiveUBDM(rrbus.ReferenceNGMP(), rrbus.OpLoad)
	if err != nil {
		t.Fatal(err)
	}
	if nv.UBDm != 26 {
		t.Errorf("naive %d", nv.UBDm)
	}
	if res.ETB(1000, 10) != 1000+10*27 {
		t.Error("ETB arithmetic")
	}
}

func TestFacadeCustomRunner(t *testing.T) {
	r, err := rrbus.NewRunner(rrbus.ReferenceNGMP())
	if err != nil {
		t.Fatal(err)
	}
	// The generic Derive accepts any Runner implementation.
	res, err := rrbus.Derive(r, rrbus.DeriveOptions{AutoExtend: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.UBDm != 27 {
		t.Errorf("derived %d", res.UBDm)
	}
}

func TestFacadeSystemAndTrace(t *testing.T) {
	cfg := rrbus.ReferenceNGMP()
	b := rrbus.NewKernelBuilder(cfg)
	progs := make([]*rrbus.Program, 0, 4)
	iters := make([]uint64, 0, 4)
	for c := 0; c < 4; c++ {
		p, err := b.RSK(c, rrbus.OpLoad)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
		it := uint64(0)
		if c == 0 {
			it = 5
		}
		iters = append(iters, it)
	}
	sys, err := rrbus.NewSystem(cfg, progs, iters)
	if err != nil {
		t.Fatal(err)
	}
	rec := &rrbus.TraceRecorder{Cap: 1024}
	rec.Attach(sys.Bus())
	if !sys.RunUntil(func() bool { return sys.Core(0).Done() }, 1<<20) {
		t.Fatal("run did not finish")
	}
	if len(rec.Events()) == 0 {
		t.Fatal("no trace events")
	}
	tl := rrbus.RenderTimeline(rec.Events(), 5, 0, 60)
	if !strings.Contains(tl, "port0") {
		t.Error("timeline render")
	}
}

func TestFacadeArbiterKinds(t *testing.T) {
	cfg := rrbus.ReferenceNGMP()
	for _, k := range []rrbus.ArbiterKind{rrbus.ArbiterRR, rrbus.ArbiterTDMA, rrbus.ArbiterFP, rrbus.ArbiterLottery, rrbus.ArbiterWRR} {
		c := cfg
		c.Arbiter = k
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

func TestFacadeETBWorkflow(t *testing.T) {
	cfg := rrbus.ReferenceNGMP()
	a, err := rrbus.NewAnalyzer(cfg, cfg.UBD(), rrbus.RunOpts{WarmupIters: 2, MeasureIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := rrbus.EEMBCProfile("tblook")
	prog, err := prof.Build(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	task := rrbus.Task{Name: "tblook", Prog: prog}
	b, err := a.Bound(task)
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.ValidateAgainstRSK(task, b)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Holds {
		t.Errorf("bound violated: %+v", v)
	}
	rep := rrbus.NewETBReport(cfg, cfg.UBD())
	rep.Bounds = append(rep.Bounds, b)
	rep.Validations[task.Name] = []rrbus.Validation{v}
	if !rep.AllHold() || !strings.Contains(rep.String(), "tblook") {
		t.Error("report assembly failed")
	}
}

// TestFacadePipeline exercises the public Plan→Run→Store→Render
// pipeline end to end: compile a plan, run it cold through a
// directory-backed store, re-run warm (zero simulations), render both
// byte-identically, round-trip the rows through a JSONL file, and reuse
// the recorded rows from an overlapping derivation plan.
func TestFacadePipeline(t *testing.T) {
	plan, err := rrbus.GeneratorPlan("fig7", rrbus.Params{"arch": "toy", "kmax": 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != 14 || len(plan.JobHashes()) != 14 || plan.Hash() == "" {
		t.Fatalf("compiled plan: %d jobs, %d hashes", len(plan.Jobs), len(plan.JobHashes()))
	}

	st, err := rrbus.OpenDirStore(filepath.Join(t.TempDir(), "results"))
	if err != nil {
		t.Fatal(err)
	}

	cold := &rrbus.Session{Store: st}
	coldResults, err := cold.RunAll(plan)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Simulated() != 14 || cold.StoreHits() != 0 {
		t.Errorf("cold: simulated=%d hits=%d", cold.Simulated(), cold.StoreHits())
	}
	coldText, err := rrbus.Render(plan, coldResults)
	if err != nil {
		t.Fatal(err)
	}

	warm := &rrbus.Session{Store: st}
	warmResults, err := warm.RunAll(plan)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated() != 0 || warm.StoreHits() != 14 {
		t.Errorf("warm: simulated=%d hits=%d", warm.Simulated(), warm.StoreHits())
	}
	warmText, err := rrbus.Render(plan, warmResults)
	if err != nil {
		t.Fatal(err)
	}
	if warmText != coldText {
		t.Error("warm render differs from cold render")
	}

	// Rows round-trip through a JSONL file and re-render identically.
	path := filepath.Join(t.TempDir(), "rows.jsonl")
	if err := rrbus.WriteResultsFile(path, coldResults); err != nil {
		t.Fatal(err)
	}
	replayed, err := rrbus.ReadResultsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rrbus.CheckResults(plan, replayed); err != nil {
		t.Fatal(err)
	}
	replayText, err := rrbus.Render(plan, replayed)
	if err != nil {
		t.Fatal(err)
	}
	if replayText != coldText {
		t.Error("replayed render differs from live render")
	}

	// An overlapping derivation plan reuses the recorded k jobs and
	// simulates only the δnop calibration.
	derive, err := rrbus.GeneratorPlan("derive", rrbus.Params{"arch": "toy", "kmax": 14})
	if err != nil {
		t.Fatal(err)
	}
	overlap := &rrbus.Session{Store: st}
	deriveResults, err := overlap.RunAll(derive)
	if err != nil {
		t.Fatal(err)
	}
	if overlap.Simulated() != 1 || overlap.StoreHits() != 14 {
		t.Errorf("overlap: simulated=%d hits=%d", overlap.Simulated(), overlap.StoreHits())
	}
	d, err := rrbus.DeriveFromResults(derive, deriveResults)
	if err != nil {
		t.Fatal(err)
	}
	if d.Err != nil {
		t.Fatalf("derivation from store-served rows failed: %v", d.Err)
	}
	if d.Res.UBDm != 6 {
		t.Errorf("derived ubdm = %d from store-served rows, want 6 (toy)", d.Res.UBDm)
	}
}

// TestFacadeDocumentAPI exercises the Plan→Run→Store→Document→Backend
// redesign end to end at the facade: the same plan renders through all
// three backends, the JSON encoding decodes back into a document that
// re-renders the identical text, and replay mismatches name the plan.
func TestFacadeDocumentAPI(t *testing.T) {
	plan, err := rrbus.GeneratorPlan("fig7", rrbus.Params{"arch": "toy", "kmax": 6})
	if err != nil {
		t.Fatal(err)
	}
	sess := &rrbus.Session{}
	results, err := sess.RunAll(plan)
	if err != nil {
		t.Fatal(err)
	}

	doc, err := rrbus.DocumentFor(plan, results)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := rrbus.Render(plan, results)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rrbus.Backends() {
		backend, err := rrbus.BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := rrbus.RenderTo(&buf, doc, backend); err != nil {
			t.Fatalf("%s backend: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s backend produced nothing", name)
		}
		if name == "text" && buf.String() != legacy {
			t.Error("text backend differs from Render")
		}
	}

	var enc strings.Builder
	jsonBackend, err := rrbus.BackendByName("json")
	if err != nil {
		t.Fatal(err)
	}
	if err := rrbus.RenderTo(&enc, doc, jsonBackend); err != nil {
		t.Fatal(err)
	}
	back, err := rrbus.DecodeDocument(strings.NewReader(enc.String()))
	if err != nil {
		t.Fatal(err)
	}
	var replay strings.Builder
	if err := rrbus.RenderTo(&replay, back, rrbus.TextBackend{}); err != nil {
		t.Fatal(err)
	}
	if replay.String() != legacy {
		t.Error("JSON round trip perturbed the text rendering")
	}

	// A mismatched replay names the plan: generator and content hash.
	_, err = rrbus.Render(plan, results[:3])
	if err == nil {
		t.Fatal("truncated replay accepted")
	}
	if !strings.Contains(err.Error(), "fig7") || !strings.Contains(err.Error(), plan.Hash()[:12]) {
		t.Errorf("replay error does not name the plan: %v", err)
	}

	// The generic results table renders identically via both spellings.
	if rrbus.RenderResultsTable(results) != rrbus.ResultsTableDocument(results).Text() {
		t.Error("results table spellings diverge")
	}
}

func TestFacadeNoisyRunner(t *testing.T) {
	inner, err := rrbus.NewRunner(rrbus.ReferenceNGMP())
	if err != nil {
		t.Fatal(err)
	}
	n, err := rrbus.NewNoisyRunner(inner, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rrbus.Derive(n, rrbus.DeriveOptions{AutoExtend: true, Tolerance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.UBDm != 27 {
		t.Errorf("noisy derivation = %d", res.UBDm)
	}
	if res.Report() == "" {
		t.Error("report rendering")
	}
}
