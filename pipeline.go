package rrbus

// This file is the public surface of the Plan→Run→Store→Render pipeline:
//
//	Plan    — a scenario file or generator invocation compiled to a
//	          canonical, content-addressed job list (every job carries a
//	          hash of the measurement it describes);
//	Session — the streaming runner: executes a plan's jobs on the
//	          experiment engine's worker pool, serving jobs whose hash
//	          already has a recorded row from the Store instead of
//	          simulating them, and recording fresh rows as they stream;
//	Store   — the content-addressed results store (in-memory or a
//	          shareable directory with integrity-verified entries);
//	Render  — the pure analysis stage: every figure, table and derived
//	          bound of the paper rebuilt from (Plan, []Result) alone.
//
// The pipeline's contract is byte-identity: for the same plan, a run
// served entirely from the store, a partly cached run, a sharded-and-
// merged run and a cold run all render the same bytes. The CLIs are thin
// callers of exactly this API.

import (
	"fmt"
	"io"

	"rrbus/internal/core"
	"rrbus/internal/exp"
	"rrbus/internal/figures"
	"rrbus/internal/report"
	"rrbus/internal/scenario"
	"rrbus/internal/sim"
	"rrbus/internal/stats"
	"rrbus/internal/store"
	"rrbus/internal/workload"
)

type (
	// PlanSpec is the declarative plan as written in a scenario file:
	// exactly one of a generator invocation, an explicit job list, or a
	// single scenario.
	PlanSpec = scenario.Plan
	// Plan is a compiled plan: the concrete job list plus its per-job
	// and whole-plan content hashes.
	Plan = scenario.Compiled
	// Scenario describes one measurement run (platform, workloads,
	// protocol).
	Scenario = scenario.Scenario
	// PlatformSpec declaratively selects and tweaks a platform.
	PlatformSpec = scenario.PlatformSpec
	// WorkloadSpec places task specs on cores.
	WorkloadSpec = scenario.WorkloadSpec
	// Protocol is the measurement protocol of a run.
	Protocol = scenario.Protocol
	// Job pairs a scenario with an optional isolation run; it is the
	// unit of streaming, sharding and content addressing.
	Job = scenario.Job
	// Result is the self-describing recorded row of one job.
	Result = scenario.Result
	// Params parameterize a generator.
	Params = scenario.Params

	// Session is the pipeline's store-aware streaming runner.
	Session = store.Session
	// Store is the content-addressed results store interface.
	Store = store.Store
	// MemStore is the in-process Store implementation.
	MemStore = store.Mem
	// DirStore is the directory-backed, integrity-verified Store.
	DirStore = store.Dir

	// Shard selects every Count-th job of a plan for this machine.
	Shard = exp.Shard
	// ResultSink consumes streamed results in job-index order.
	ResultSink = exp.Sink[scenario.Result]
	// ResultSinkFunc adapts a function to ResultSink.
	ResultSinkFunc = exp.SinkFunc[scenario.Result]

	// Document is the typed output of the Render stage: an ordered list
	// of blocks a Backend encodes as text, HTML or JSON.
	Document = report.Document
	// DocBlock is one typed element of a Document.
	DocBlock = report.Block
	// Backend encodes a Document into one output format.
	Backend = report.Backend
	// TextBackend is the legacy terminal encoding (byte-identical to the
	// pre-Document renderers).
	TextBackend = report.TextBackend
	// HTMLBackend is the self-contained single-file HTML encoding with
	// inline SVG charts.
	HTMLBackend = report.HTMLBackend
	// JSONBackend is the schema-versioned machine-readable encoding
	// (decode with DecodeDocument).
	JSONBackend = report.JSONBackend

	// The Document block types, for assembling or post-processing
	// documents programmatically.
	HeadingBlock   = report.Heading
	ParagraphBlock = report.Paragraph
	SpacerBlock    = report.Spacer
	TableBlock     = report.Table
	SeriesBlock    = report.Series
	TimelineBlock  = report.Timeline
	HistogramBlock = report.Histogram
	BoundsBlock    = report.Bounds
	// Column and RowBlock are a TableBlock's typed pieces; Value is one
	// typed cell.
	Column   = report.Column
	RowBlock = report.Row
	Value    = report.Value

	// StorePlanInfo summarizes one recorded plan manifest (rrbus-store ls).
	StorePlanInfo = store.PlanInfo
	// StoreAuditReport is the outcome of DirStore.Verify (rrbus-store
	// verify).
	StoreAuditReport = store.AuditReport
	// StoreIssue is one store-verification failure.
	StoreIssue = store.Issue

	// Derivation is the detection half of the methodology re-run over a
	// recorded derivation block.
	Derivation = report.Derivation
	// PeriodMethod names one of the period-detection methods a
	// derivation reports per-method estimates for.
	PeriodMethod = core.PeriodMethod
	// SummaryRow is one line of the headline derived-vs-naive table.
	SummaryRow = figures.SummaryRow
	// Histogram is a value→count distribution with rendering helpers.
	Histogram = stats.Hist
)

// ResultSchema is the version of the Result row format this build reads
// and writes (rows from older archives, including unversioned ones, stay
// readable; rows from newer builds are rejected instead of mis-rendered).
const ResultSchema = scenario.ResultSchema

// LoadPlan loads a scenario file and compiles it into a
// content-addressed plan.
func LoadPlan(path string) (*Plan, error) { return scenario.LoadCompiled(path) }

// CompilePlan compiles an in-memory plan spec.
func CompilePlan(spec *PlanSpec) (*Plan, error) { return scenario.Compile(spec) }

// GeneratorPlan compiles a plan invoking a registered generator — the
// programmatic twin of a {"generator": ..., "params": ...} file.
func GeneratorPlan(generator string, params Params) (*Plan, error) {
	return scenario.CompileGenerator(generator, params)
}

// Generators lists the registered scenario generators.
func Generators() []string { return scenario.Names() }

// NewMemStore returns an empty in-process results store.
func NewMemStore() *MemStore { return store.NewMem() }

// OpenDirStore opens (creating if needed) a directory-backed results
// store. The directory can be shared across runs, processes and
// machines; entries are integrity-checked on read.
func OpenDirStore(dir string) (*DirStore, error) { return store.OpenDir(dir) }

// ParseShard parses the CLIs' "i/N" shard syntax ("" = all jobs).
func ParseShard(spec string) (Shard, error) { return exp.ParseShard(spec) }

// SetWorkers bounds the experiment engine's simulation goroutines
// (0 restores the default, GOMAXPROCS). Output is identical for any
// value.
func SetWorkers(n int) { exp.SetWorkers(n) }

// SetFastForward toggles the event-driven scheduler for every subsequent
// run in the process (enabled by default). Results are bit-identical
// either way — the switch exists so CLI smoke tests can diff the two
// execution modes end to end (`rrbus-sim -no-fast-forward`).
func SetFastForward(enabled bool) { sim.ForceCycleByCycle = !enabled }

// SetSteadyState toggles steady-state period memoization — the engine's
// third mode, layered on event-driven execution — for every subsequent
// run in the process (enabled by default). When a run's architectural
// state is detected repeating with a fixed period, whole periods are
// extrapolated in closed form instead of simulated; results are
// bit-identical either way. Runs that need per-event observation
// (traces, OnGrant/OnSubmit hooks) disable memoization automatically,
// and disabling fast-forward implies disabling this too. The switch
// exists so CLI smoke tests can diff all three engine modes end to end
// (`rrbus-sim -no-steady-state`).
func SetSteadyState(enabled bool) { sim.ForceNoSteadyState = !enabled }

// DocumentFor rebuilds the plan's figure/table/bound Document from
// recorded results: the plan generator's renderer when one exists, the
// generic results table otherwise. Results are validated against the
// plan's job list first, so replaying a recording against the wrong plan
// fails — with the plan hash and generator named in the error — instead
// of mislabeling rows.
func DocumentFor(p *Plan, results []Result) (*Document, error) {
	doc, err := report.DocumentFor(p.Generator(), p.Jobs, results)
	if err != nil {
		return nil, fmt.Errorf("render plan %s (%s): %w", p.Name(), planLabel(p), err)
	}
	if doc.Title == "" {
		doc.Title = p.Name()
	}
	return doc, nil
}

// planLabel names a plan for error messages: its generator (or job-list
// shape) plus its content hash, so a mismatched replay pinpoints which
// plan the renderer was holding.
func planLabel(p *Plan) string {
	gen := "explicit job list"
	if g := p.Generator(); g != "" {
		gen = "generator " + g
	}
	return fmt.Sprintf("%s, hash %.12s", gen, p.Hash())
}

// Render rebuilds the plan's figure/table/bound text from recorded
// results — the text-backend convenience over DocumentFor, byte-identical
// to the pre-Document pipeline.
func Render(p *Plan, results []Result) (string, error) {
	doc, err := DocumentFor(p, results)
	if err != nil {
		return "", err
	}
	return doc.Text(), nil
}

// RenderTo encodes a document to w with the given backend (nil selects
// text).
func RenderTo(w io.Writer, doc *Document, b Backend) error { return report.RenderTo(w, doc, b) }

// Backends lists the available render-backend names ("text", "html",
// "json") in CLI order.
func Backends() []string { return report.Backends() }

// BackendByName returns the render backend with the given CLI name (""
// selects text).
func BackendByName(name string) (Backend, error) { return report.BackendFor(name) }

// DecodeDocument reads a JSONBackend encoding back into a Document —
// archived documents re-render through any backend without touching the
// original results.
func DecodeDocument(r io.Reader) (*Document, error) { return report.DecodeDocument(r) }

// HasRenderer reports whether a generator has a dedicated figure
// renderer (false means Render falls back to the generic results table).
func HasRenderer(generator string) bool {
	_, ok := report.For(generator)
	return ok
}

// ResultsTableDocument builds the generic one-row-per-job results table
// as a Document.
func ResultsTableDocument(results []Result) *Document { return report.ResultsTable(results) }

// RenderResultsTable formats results as the generic one-row-per-job
// table (text encoding).
func RenderResultsTable(results []Result) string { return report.ResultsTable(results).Text() }

// CheckResults validates recorded results against a plan's job list
// (count and IDs) without rendering.
func CheckResults(p *Plan, results []Result) error { return report.Check(p.Jobs, results) }

// DeriveFromResults re-runs the detection half of the methodology over a
// recorded derivation block (job 0 the δnop calibration, jobs 1.. the k
// sweep). No simulation runs.
func DeriveFromResults(p *Plan, results []Result) (*Derivation, error) {
	return report.DerivationFrom(p.Jobs, results)
}

// ReadResultsFile reads a complete (unsharded or merged) JSONL results
// file back into job order, rejecting shard fragments and rows written
// by a newer schema.
func ReadResultsFile(path string) ([]Result, error) { return scenario.ReadResultsFile(path) }

// WriteResults writes results as the JSONL row stream a Session produces
// (row i carries job index i).
func WriteResults(w io.Writer, results []Result) error { return scenario.WriteResults(w, results) }

// WriteResultsFile writes results as a JSONL file (see WriteResults).
func WriteResultsFile(path string, results []Result) error {
	return scenario.WriteResultsFile(path, results)
}

// MergeResults recombines per-shard JSONL files into the byte stream an
// unsharded run would have produced (written to w when non-nil) and
// returns the decoded rows in job order.
func MergeResults(w io.Writer, files []string) ([]Result, error) {
	_, results, err := scenario.MergeFiles(w, files)
	return results, err
}

// SameFilePath reports whether two paths refer to the same file — the
// guard the CLIs use to refuse a merge output that aliases one of its
// inputs.
func SameFilePath(a, b string) bool { return scenario.SamePath(a, b) }

// ImportResults records a plan's results into a store under their job
// hashes — archive ingestion: a merged JSONL file measured elsewhere
// becomes servable rows here. Results must line up with the plan's job
// list.
func ImportResults(st Store, p *Plan, results []Result) error {
	if err := CheckResults(p, results); err != nil {
		return err
	}
	if pr, ok := st.(store.PlanRecorder); ok {
		if err := pr.PutPlan(p); err != nil {
			return err
		}
	}
	hashes := p.JobHashes()
	for i, r := range results {
		if err := st.Put(hashes[i], r); err != nil {
			return err
		}
	}
	return nil
}

// Summary derives ubd on each configuration with both the methodology
// (auto-extending in-process sweep) and the naive baseline — the
// headline table.
func Summary(cfgs ...Config) ([]SummaryRow, error) { return figures.Summary(cfgs...) }

// RenderSummary formats the headline table (text encoding, table only).
func RenderSummary(rows []SummaryRow) string { return figures.RenderSummary(rows) }

// SummaryDocument builds the headline table as a complete document
// (heading included), renderable through any backend.
func SummaryDocument(rows []SummaryRow) *Document { return figures.SummaryDocument(rows) }

// DocumentSchema is the version of the JSON document encoding this
// build reads and writes (DecodeDocument rejects newer ones).
const DocumentSchema = report.DocumentSchema

// IntV wraps an int table/series cell.
func IntV(v int) Value { return report.IntV(v) }

// Int64V wraps an int64 cell.
func Int64V(v int64) Value { return report.Int64(v) }

// FloatV wraps a float cell.
func FloatV(v float64) Value { return report.FloatV(v) }

// StringV wraps a string cell.
func StringV(v string) Value { return report.StringV(v) }

// PlatformByName returns a stock platform by its CLI spelling
// ("ref", "var", "toy"; "" is ref).
func PlatformByName(name string) (Config, error) { return sim.ByName(name) }

// BuildTaskSpec builds a program from the task-spec grammar
// ("rsk:load", "rsknop:store:12", "nop", "l2miss:load", profile names)
// placed on the given core. Seed parameterizes profile generators.
func BuildTaskSpec(b KernelBuilder, spec string, core int, seed uint64) (*Program, error) {
	return workload.BuildSpec(b, spec, core, seed)
}

// HistogramFromDense wraps a dense count array (e.g. Measurement.
// GammaHist) in a renderable Histogram.
func HistogramFromDense(counts []uint64) *Histogram { return stats.FromDense(counts) }
