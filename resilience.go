package rrbus

// The resilience surface of the pipeline: cooperative cancellation,
// retry policies for transient store failures, quarantine-and-resimulate
// self-healing for corrupt store entries, store-wide repair, and the
// deterministic fault-injection harness the chaos tests (and
// rrbus-bench -faults) drive. See the "Resilience" section of doc.go for
// the contract.

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rrbus/internal/store"
)

type (
	// RetryPolicy bounds a Session's retries of transient store errors
	// (exponential backoff with deterministic jitter). The zero value
	// disables retrying.
	RetryPolicy = store.RetryPolicy
	// TransientError marks a store failure as retryable (the stored data
	// is not suspected damaged; the operation just failed).
	TransientError = store.TransientError
	// CorruptError reports a damaged store entry — the class of failure
	// a Session self-heals by quarantining and re-simulating.
	CorruptError = store.CorruptError
	// Quarantiner is implemented by stores that can set damaged entries
	// aside (DirStore and MemStore both do).
	Quarantiner = store.Quarantiner
	// QuarantineInfo describes one quarantined entry (rrbus-store gc).
	QuarantineInfo = store.QuarantineInfo
	// RepairReport is the outcome of DirStore.Repair (rrbus-store
	// repair).
	RepairReport = store.RepairReport
	// FaultyStore wraps a Store and injects deterministic faults —
	// transient errors, corrupt reads, latency — for chaos testing.
	FaultyStore = store.Faulty
	// FaultStats snapshots the operations a FaultyStore saw.
	FaultStats = store.FaultStats
)

// DefaultRetry is the retry policy the CLIs run with: a handful of
// quickly escalating attempts, enough to ride out a transient filesystem
// hiccup without masking a persistent failure.
var DefaultRetry = RetryPolicy{Max: 3, BaseDelay: 25 * time.Millisecond}

// ErrFaultInjected is the cause inside every transient error a
// FaultyStore injects, distinguishing harness faults from real ones.
var ErrFaultInjected = store.ErrInjected

// IsTransientStoreError reports whether err is (or wraps) a retryable
// store failure.
func IsTransientStoreError(err error) bool { return store.IsTransient(err) }

// IsCorruptStoreError reports whether err is (or wraps) a damaged-entry
// store failure.
func IsCorruptStoreError(err error) bool { return store.IsCorrupt(err) }

// SignalContext returns a context cancelled by the first SIGINT or
// SIGTERM — the hook the CLIs pass to Session.RunContext so an
// interrupted sweep drains in-flight jobs and flushes completed rows
// (resumable warm) instead of dying mid-write. A second signal exits
// immediately with status 130, so a hung drain can always be cut short.
// The returned stop function releases the signal handler.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		cancel()
		<-ch
		os.Exit(130)
	}()
	stop := func() {
		signal.Stop(ch)
		cancel()
	}
	return ctx, stop
}
