// Dist walkthrough: the distributed sweep fabric end to end — start a
// coordinator (an rrbus.Server in distribute mode), attach two workers,
// submit a plan and watch the fleet lease, simulate and stream the rows
// back; prove the rendered document is byte-identical to a
// single-process run; drain a worker mid-sweep and watch its lease
// requeue onto the survivor; then sync stores by hash delta with
// PushStore/PullStore — a laptop pulling a cluster's rows, a warm cache
// pushed into a fresh coordinator.
//
// Every piece is the same API cmd/rrbus-serve (-distribute) and
// cmd/rrbus-worker wrap; the example drives it in-process.
//
// Run with:
//
//	go run ./examples/dist
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"rrbus"
)

// fig7 is the paper's central rsk-nop slowdown sweep: one job per k, an
// embarrassingly parallel list the fabric can scatter.
const fig7Plan = `{"generator": "fig7", "params": {"arch": "toy", "kmax": 12}}`

func main() {
	// ── The single-process reference ─────────────────────────────────
	// Byte-identity is the fabric's contract, so first produce the bytes
	// a plain local run renders.
	plan, err := rrbus.GeneratorPlan("fig7", rrbus.Params{"arch": "toy", "kmax": 12})
	if err != nil {
		log.Fatal(err)
	}
	localStore := rrbus.NewMemStore()
	sess := &rrbus.Session{Store: localStore}
	results, err := sess.RunAll(plan)
	if err != nil {
		log.Fatal(err)
	}
	reference, err := rrbus.Render(plan, results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single process: %d jobs simulated, %d bytes of document\n\n",
		len(plan.Jobs), len(reference))

	// ── The coordinator ──────────────────────────────────────────────
	// Distribute mode: submitted plans are diffed against the store and
	// the missing job hashes go to a lease queue instead of a local
	// session. cmd/rrbus-serve mounts exactly this:
	//
	//	rrbus-serve -store results/ -addr :8077 -distribute -lease-ttl 30s
	coordStore := rrbus.NewMemStore()
	server := rrbus.NewServer(coordStore, rrbus.ServeOptions{
		Distribute: true,
		LeaseTTL:   30 * time.Second,
		LeaseBatch: 4,
	})
	ts := httptest.NewServer(server)
	defer ts.Close()

	// ── The fleet ────────────────────────────────────────────────────
	// Workers register, lease batches of compiled jobs, run them through
	// an ordinary local store-aware Session (inheriting retry, quarantine
	// and healing unchanged) and stream the rows back, renewing their
	// lease with every delivery. cmd/rrbus-worker is this loop:
	//
	//	rrbus-worker -coordinator http://host:8077 -store cache/
	ctx, cancelFleet := context.WithCancel(context.Background())
	defer cancelFleet()
	var fleet sync.WaitGroup
	workers := make([]*rrbus.Worker, 2)
	cancels := make([]context.CancelFunc, 2)
	for i := range workers {
		w := rrbus.NewWorker(ts.URL, rrbus.WorkerOptions{
			Name: fmt.Sprintf("w%d", i+1),
			Poll: 10 * time.Millisecond,
		})
		wctx, cancel := context.WithCancel(ctx)
		workers[i], cancels[i] = w, cancel
		fleet.Add(1)
		go func() { defer fleet.Done(); w.Run(wctx) }()
	}

	// ── Cold distributed submission ──────────────────────────────────
	st := submit(ts.URL, fig7Plan)
	fmt.Printf("submitted %s (%d jobs) to the coordinator\n", st.Hash, len(plan.Jobs))
	st = await(ts.URL, st.Hash)
	fmt.Printf("fleet done: leased %d grants, ingested %d rows, %d store hits\n",
		st.Leased, st.Ingested, st.StoreHits)

	doc := fetchDoc(ts.URL, st.Hash)
	fmt.Printf("distributed document: %d bytes, identical to single process: %v\n\n",
		len(doc), bytes.Equal(doc, []byte(reference)))

	// ── Worker failure mid-sweep ─────────────────────────────────────
	// Drain one worker while a bigger plan runs. Its released lease
	// requeues immediately (a kill -9 takes the lease-TTL path instead);
	// the survivor finishes the sweep and the document is still exact.
	bigger := `{"generator": "fig7", "params": {"arch": "toy", "kmax": 40}}`
	st = submit(ts.URL, bigger)
	time.Sleep(50 * time.Millisecond) // let leases go out
	cancels[0]()
	fmt.Println("worker w1 drained mid-sweep")
	st = await(ts.URL, st.Hash)
	fmt.Printf("survivor finished: ingested %d rows, %d jobs requeued after the drain\n\n",
		st.Ingested, st.Requeued)

	// ── Store sync by hash delta ─────────────────────────────────────
	// PullStore fetches exactly the rows the local store is missing —
	// the laptop ends up with the cluster's sweep without re-simulating.
	// `rrbus-store pull results/ http://host:8077` is this call.
	rep, err := rrbus.PullStore(ctx, localStore, ts.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pull: %d local / %d remote rows, transferred the %d-row delta\n",
		rep.LocalRows, rep.RemoteRows, rep.Transferred)
	// A second pull has nothing left to move: the diff is by content
	// hash, so sync is idempotent.
	rep, err = rrbus.PullStore(ctx, localStore, ts.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pull again: %d rows transferred (already in sync)\n\n", rep.Transferred)

	// PushStore is the reverse: seed a fresh coordinator from a warm
	// cache so the fleet only ever simulates genuinely new work. Rows
	// are checksum-verified on ingest — a corrupted transfer is refused,
	// never recorded.
	fresh := rrbus.NewMemStore()
	freshServer := rrbus.NewServer(fresh, rrbus.ServeOptions{Distribute: true})
	ts2 := httptest.NewServer(freshServer)
	defer ts2.Close()
	rep, err = rrbus.PushStore(ctx, localStore, ts2.URL, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("push into a fresh coordinator: %d rows transferred\n", rep.Transferred)
	// The pushed rows satisfy queued work directly: resubmitting the
	// sweep completes with zero leases — no worker even attached.
	st = submit(ts2.URL, fig7Plan)
	st = await(ts2.URL, st.Hash)
	fmt.Printf("warm plan on the fresh coordinator: %d simulated, %d store hits, %d leased\n\n",
		st.Simulated, st.StoreHits, st.Leased)
	freshServer.Drain()

	// ── Drain ────────────────────────────────────────────────────────
	cancelFleet()
	fleet.Wait()
	for _, w := range workers {
		sum := w.Summary()
		fmt.Printf("worker summary: %d leases, %d rows shipped, %d simulated locally\n",
			sum.Leases, sum.Shipped, sum.Simulated)
	}
	sum := server.Drain()
	fmt.Printf("coordinator summary: %d leased, %d ingested, %d requeued\n",
		sum.Leased, sum.Ingested, sum.Requeued)
}

// submit POSTs a plan and decodes the 202 status body.
func submit(base, body string) rrbus.PlanStatus {
	resp, err := http.Post(base+"/v1/plans", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st rrbus.PlanStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

// await polls the status endpoint until the plan completes.
func await(base, hash string) rrbus.PlanStatus {
	for {
		resp, err := http.Get(base + "/v1/plans/" + hash)
		if err != nil {
			log.Fatal(err)
		}
		var st rrbus.PlanStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		switch st.Status {
		case rrbus.PlanComplete:
			return st
		case rrbus.PlanFailed, rrbus.PlanInterrupted:
			log.Fatalf("plan %s: %s (%s)", hash, st.Status, st.Err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchDoc retrieves the rendered text document.
func fetchDoc(base, hash string) []byte {
	resp, err := http.Get(base + "/v1/plans/" + hash + "/doc?format=text")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("doc: HTTP %d: %s", resp.StatusCode, body)
	}
	return body
}
