// Policies: probe the methodology's central assumption — that the bus is
// round-robin arbitrated (§4.3 "Inputs").
//
// The Eq. 3 mapping from saw-tooth period to ubd is specific to RR. This
// example reruns the derivation under TDMA, fixed-priority and lottery
// arbitration: TDMA produces a period equal to the frame (overestimating),
// fixed priority and lottery produce no usable period at all, and the
// confidence machinery reports why.
//
// Run with:
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"

	"rrbus"
)

func main() {
	base := rrbus.ReferenceNGMP()
	fmt.Printf("platform: %d cores, lbus=%d, Eq.1 ubd=%d\n\n", base.Cores, base.BusLatency(), base.UBD())

	for _, arb := range []struct {
		kind rrbus.ArbiterKind
		note string
	}{
		{rrbus.ArbiterRR, "the assumed policy: period = ubd"},
		{rrbus.ArbiterTDMA, "slots are granted by wall clock: period tracks the frame Nc×slot"},
		{rrbus.ArbiterFP, "no rotating priority window: Eq. 2 does not apply"},
		{rrbus.ArbiterLottery, "random grants: no stable period"},
	} {
		cfg := base
		cfg.Arbiter = arb.kind
		cfg.Name = base.Name + "-" + string(arb.kind)
		res, err := rrbus.DeriveUBD(cfg, rrbus.DeriveOptions{KLimit: 160})
		switch {
		case err != nil && res == nil:
			log.Fatal(err)
		case err != nil:
			fmt.Printf("%-12s derivation refused: %v\n", cfg.Arbiter, err)
		default:
			fmt.Printf("%-12s derived %d cycles (periodK %d, confidence %.2f)",
				cfg.Arbiter, res.UBDm, res.PeriodK, res.Confidence.Score())
			if res.UBDm != cfg.UBD() {
				fmt.Printf("  ** differs from Eq.1 ubd %d **", cfg.UBD())
			}
			fmt.Println()
			for _, n := range res.Confidence.Notes {
				fmt.Printf("%12s   note: %s\n", "", n)
			}
		}
		fmt.Printf("%12s   (%s)\n\n", "", arb.note)
	}

	fmt.Println("conclusion: verify the arbitration policy from the manual before trusting ubdm —")
	fmt.Println("the methodology's period detection is sound only for round-robin buses.")
}
