// Quickstart: derive the round-robin bus upper-bound delay of a platform
// from measurements alone, then compare it against the naive state of the
// art and the analytical ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rrbus"
)

func main() {
	// The paper's reference platform: a 4-core NGMP-like multicore whose
	// round-robin bus holds each transaction for at most 9 cycles, so
	// the true bound is ubd = (4-1)*9 = 27. The methodology must find
	// this number without being told any of those latencies.
	cfg := rrbus.ReferenceNGMP()

	res, err := rrbus.DeriveUBD(cfg, rrbus.DeriveOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform: %s (%d cores)\n", cfg.Name, cfg.Cores)
	fmt.Printf("derived ubdm      = %d cycles\n", res.UBDm)
	fmt.Printf("saw-tooth period  = %d nop steps, δnop = %.3f cycles\n", res.PeriodK, res.DeltaNop)
	fmt.Printf("detection methods = %v\n", res.Methods)
	fmt.Printf("confidence        = %.2f (utilization ≥ %.0f%%: %v)\n",
		res.Confidence.Score(), res.Confidence.MinUtilization*100, res.Confidence.UtilizationOK)

	// The naive approach — run an rsk against rsk copies and divide the
	// slowdown by the request count — underestimates because of the
	// synchrony effect (it converges to γ(δrsk), not ubd).
	naive, err := rrbus.NaiveUBDM(cfg, rrbus.OpLoad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive ubdm        = %d cycles (underestimates)\n", naive.UBDm)
	fmt.Printf("analytical ubd    = %d cycles (Eq. 1 ground truth)\n", cfg.UBD())

	// Using the bound: pad a task's isolation execution time with
	// nr * ubdm to obtain a contention-safe execution-time bound.
	prof, _ := rrbus.EEMBCProfile("canrdr")
	task, err := prof.Build(0, 42)
	if err != nil {
		log.Fatal(err)
	}
	isol, err := rrbus.RunIsolation(cfg, task, rrbus.RunOpts{MeasureIters: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntask %s: isolation %d cycles, %d bus requests\n", task.Name, isol.Cycles, isol.Requests)
	fmt.Printf("padded ETB = %d + %d*%d = %d cycles\n",
		isol.Cycles, isol.Requests, res.UBDm, res.ETB(isol.Cycles, isol.Requests))
}
