// Serve walkthrough: the bound-as-a-service HTTP daemon end to end —
// start an rrbus.Server over a content-addressed store, submit a plan
// cold (every job simulates), poll its status to completion, fetch the
// rendered document, resubmit it warm (zero simulations), watch a
// second overlapping plan simulate only its delta, scrape the
// Prometheus metrics, and drain gracefully.
//
// Every step prints the curl equivalent: the example is the HTTP
// contract cmd/rrbus-serve exposes, driven in-process.
//
// Run with:
//
//	go run ./examples/serve
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rrbus"
)

const (
	// The same JSON a scenario file holds: fig7 is the paper's central
	// rsk-nop slowdown sweep, derive the §4.2 bound derivation. At the
	// default protocol their k-sweep jobs are content-identical, so
	// derive over a fig7-warmed store simulates only its δnop
	// calibration job.
	fig7Plan   = `{"generator": "fig7", "params": {"arch": "toy", "kmax": 10}}`
	derivePlan = `{"generator": "derive", "params": {"arch": "toy", "kmax": 10}}`
)

func main() {
	dir := filepath.Join(os.TempDir(), "rrbus-serve-example")
	defer os.RemoveAll(dir)
	store, err := rrbus.OpenDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// The server is just an http.Handler over the store; cmd/rrbus-serve
	// mounts the same thing on a real listener:
	//
	//	rrbus-serve -store results/ -addr :8077
	server := rrbus.NewServer(store, rrbus.ServeOptions{Retry: rrbus.DefaultRetry})
	ts := httptest.NewServer(server)
	defer ts.Close()

	// 1. Cold submission. The server compiles the plan, diffs its job
	// hashes against the store — empty, so everything is missing — and
	// starts a bounded session.
	//
	//	curl -d @fig7.json localhost:8077/v1/plans
	st := submit(ts.URL, fig7Plan)
	fmt.Printf("submitted %s (%d jobs): %s\n", st.Hash, st.Jobs, st.Status)

	// 2. Poll until complete.
	//
	//	curl localhost:8077/v1/plans/<hash>
	st = poll(ts.URL, st.Hash)
	fmt.Printf("cold run:   %s, %d simulated, %d served from store\n",
		st.Status, st.Simulated, st.StoreHits)

	// 3. Fetch the document — byte-identical to what
	// `rrbus-figures -scenario fig7.json -store results/` prints.
	//
	//	curl localhost:8077/v1/plans/<hash>/doc?format=text
	doc := get(ts.URL + "/v1/plans/" + st.Hash + "/doc?format=text")
	fmt.Printf("document:   %d bytes, first line %q\n", len(doc), firstLine(doc))

	// 4. Warm resubmission: every row is recorded now, so the re-run is
	// an all-hits pass that revalidates the rows without simulating.
	submit(ts.URL, fig7Plan)
	st = poll(ts.URL, st.Hash)
	fmt.Printf("warm rerun: %s, %d simulated, %d served from store\n",
		st.Status, st.Simulated, st.StoreHits)

	// 5. An overlapping plan simulates only its delta: derive's k-sweep
	// rows are already recorded under fig7's hashes.
	st = submit(ts.URL, derivePlan)
	st = poll(ts.URL, st.Hash)
	fmt.Printf("overlap:    %s, %d simulated, %d served from store\n",
		st.Status, st.Simulated, st.StoreHits)

	// 6. The same counters, as a Prometheus scrape.
	//
	//	curl localhost:8077/metrics
	for _, line := range strings.Split(get(ts.URL+"/metrics"), "\n") {
		if strings.HasPrefix(line, "rrbus_jobs_") || strings.HasPrefix(line, "rrbus_plans_submitted") {
			fmt.Println("metrics:   ", line)
		}
	}

	// 7. Drain: in a daemon this is the first SIGINT — queued plans are
	// marked interrupted, in-flight jobs finish and stay recorded, and
	// the summed counters come back for the exit report.
	sum := server.Drain()
	fmt.Printf("drained:    %d plans (%d interrupted), %d simulated, %d hits\n",
		sum.Plans, sum.Interrupted, sum.Simulated, sum.StoreHits)
}

// submit POSTs a plan body and decodes the accepted status.
func submit(base, body string) rrbus.PlanStatus {
	resp, err := http.Post(base+"/v1/plans", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st rrbus.PlanStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

// poll waits for the plan to leave the queue and finish its run.
func poll(base, hash string) rrbus.PlanStatus {
	for {
		resp, err := http.Get(base + "/v1/plans/" + hash)
		if err != nil {
			log.Fatal(err)
		}
		var st rrbus.PlanStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		switch st.Status {
		case rrbus.PlanComplete, rrbus.PlanFailed, rrbus.PlanInterrupted:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
