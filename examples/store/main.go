// Store walkthrough: the Plan→Run→Store→Render pipeline end to end —
// measure a sweep once into a content-addressed results store, re-run it
// warm (zero simulations), reuse the recorded rows from a *different*
// plan whose jobs overlap, render every artifact from recorded rows
// alone — then break things on purpose: kill a sweep mid-flight and
// resume it warm, and corrupt a recorded entry and watch the session
// quarantine and heal it.
//
// Run with:
//
//	go run ./examples/store
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rrbus"
)

// killingStore wraps a Store and cancels a context after serving a fixed
// number of lookups — a deterministic stand-in for hitting Ctrl-C in the
// middle of a sweep (the CLIs wire the same cancellation to SIGINT via
// rrbus.SignalContext).
type killingStore struct {
	rrbus.Store
	after  int
	cancel context.CancelFunc
}

func (k *killingStore) Get(jobHash string) (rrbus.Result, bool, error) {
	if k.after--; k.after < 0 {
		k.cancel()
	}
	return k.Store.Get(jobHash)
}

func main() {
	// A content-addressed results store: one integrity-checked entry
	// per recorded job, keyed by the job's content hash, shareable
	// across runs, processes and machines. (The CLIs open the same kind
	// of store with -store <dir>.)
	dir := filepath.Join(os.TempDir(), "rrbus-store-example")
	defer os.RemoveAll(dir)
	store, err := rrbus.OpenDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Plan: compile the paper's central experiment — the Fig. 7
	// rsk-nop slowdown sweep — into a content-addressed job list.
	plan, err := rrbus.GeneratorPlan("fig7", rrbus.Params{"arch": "toy", "kmax": 14})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan %s: %d jobs, hash %.12s…\n", plan.Name(), len(plan.Jobs), plan.Hash())

	// 2. Run, cold: every job simulates; fresh rows stream into the
	// store as they are emitted.
	cold := &rrbus.Session{Store: store}
	results, err := cold.RunAll(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run:  %2d simulated, %2d served from store\n", cold.Simulated(), cold.StoreHits())

	// 3. Run, warm: the same plan again. Every job's hash is already
	// recorded, so nothing simulates — and because renderers consume
	// only recorded rows, the output is byte-identical.
	warm := &rrbus.Session{Store: store}
	warmResults, err := warm.RunAll(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run:  %2d simulated, %2d served from store\n", warm.Simulated(), warm.StoreHits())

	coldText, err := rrbus.Render(plan, results)
	if err != nil {
		log.Fatal(err)
	}
	warmText, err := rrbus.Render(plan, warmResults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("render byte-identical: %v\n\n", coldText == warmText)

	// 4. Cross-plan reuse: a derivation sweep over the same k range is
	// a *different* plan (different generator, different job IDs), but
	// its per-k jobs measure the same scenarios — same content hashes —
	// so only the δnop calibration job actually simulates.
	derive, err := rrbus.GeneratorPlan("derive", rrbus.Params{"arch": "toy", "kmax": 14})
	if err != nil {
		log.Fatal(err)
	}
	overlap := &rrbus.Session{Store: store}
	deriveResults, err := overlap.RunAll(derive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derive run: %2d simulated, %2d served from store (only the δnop calibration is new)\n",
		overlap.Simulated(), overlap.StoreHits())

	// 5. Render: the full bound derivation, rebuilt from recorded rows —
	// 14 of which were measured by a different plan.
	d, err := rrbus.DeriveFromResults(derive, deriveResults)
	if err != nil {
		log.Fatal(err)
	}
	if d.Err != nil {
		log.Fatal(d.Err)
	}
	fmt.Printf("derived ubdm = %d cycles (actual ubd = %d) — from the store, not the simulator\n",
		d.Res.UBDm, d.Cfg.UBD())

	// 6. Kill and resume: cancel a cold sweep partway through. The
	// session drains gracefully — no new jobs launch, in-flight jobs
	// finish, and every completed row is already recorded — so the error
	// is context.Canceled, not lost work. Re-running the same plan
	// resumes warm: only the unfinished jobs simulate.
	dir2 := filepath.Join(os.TempDir(), "rrbus-store-example-resume")
	defer os.RemoveAll(dir2)
	store2, err := rrbus.OpenDirStore(dir2)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := &rrbus.Session{
		Store:   &killingStore{Store: store2, after: 6, cancel: cancel},
		Workers: 1, // serial, so the "kill" lands at a deterministic row
	}
	if _, err := killed.RunAllContext(ctx, plan); !errors.Is(err, context.Canceled) {
		log.Fatalf("expected context.Canceled, got %v", err)
	}
	fmt.Printf("\nkilled run: %2d simulated before the interrupt, all of them recorded\n", killed.Simulated())
	resumed := &rrbus.Session{Store: store2}
	if _, err := resumed.RunAll(plan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed:    %2d served from store, %2d simulated — only the unfinished jobs\n",
		resumed.StoreHits(), resumed.Simulated())

	// 7. Corruption heals: flip a byte in a recorded entry file. The
	// next session that reads it sees the integrity-checksum mismatch,
	// quarantines the damaged file (quarantine/<hash>.json + a .reason
	// note), re-simulates the row as if it were a miss, and records the
	// fresh result in its place — the sweep completes as if nothing
	// happened. (rrbus-store repair heals a whole directory offline the
	// same way; rrbus-store gc lists and drops the quarantined debris.)
	hash := plan.JobHashes()[0]
	entry := filepath.Join(dir2, "jobs", hash[:2], hash+".json")
	data, err := os.ReadFile(entry)
	if err != nil {
		log.Fatal(err)
	}
	data[len(data)/2] ^= 1
	if err := os.WriteFile(entry, data, 0o644); err != nil {
		log.Fatal(err)
	}
	healer := &rrbus.Session{Store: store2, Retry: rrbus.DefaultRetry}
	if _, err := healer.RunAll(plan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healed:     %2d corrupt entry quarantined, %2d re-simulated, %2d served from store\n",
		healer.Quarantined(), healer.Repaired(), healer.StoreHits())
	qs, err := store2.Quarantined()
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range qs {
		fmt.Printf("quarantine: %.12s… healed=%v\n", q.Hash, q.Healed)
	}
}
