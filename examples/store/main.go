// Store walkthrough: the Plan→Run→Store→Render pipeline end to end —
// measure a sweep once into a content-addressed results store, re-run it
// warm (zero simulations), reuse the recorded rows from a *different*
// plan whose jobs overlap, and render every artifact from recorded rows
// alone.
//
// Run with:
//
//	go run ./examples/store
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rrbus"
)

func main() {
	// A content-addressed results store: one integrity-checked entry
	// per recorded job, keyed by the job's content hash, shareable
	// across runs, processes and machines. (The CLIs open the same kind
	// of store with -store <dir>.)
	dir := filepath.Join(os.TempDir(), "rrbus-store-example")
	defer os.RemoveAll(dir)
	store, err := rrbus.OpenDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Plan: compile the paper's central experiment — the Fig. 7
	// rsk-nop slowdown sweep — into a content-addressed job list.
	plan, err := rrbus.GeneratorPlan("fig7", rrbus.Params{"arch": "toy", "kmax": 14})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan %s: %d jobs, hash %.12s…\n", plan.Name(), len(plan.Jobs), plan.Hash())

	// 2. Run, cold: every job simulates; fresh rows stream into the
	// store as they are emitted.
	cold := &rrbus.Session{Store: store}
	results, err := cold.RunAll(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run:  %2d simulated, %2d served from store\n", cold.Simulated(), cold.StoreHits())

	// 3. Run, warm: the same plan again. Every job's hash is already
	// recorded, so nothing simulates — and because renderers consume
	// only recorded rows, the output is byte-identical.
	warm := &rrbus.Session{Store: store}
	warmResults, err := warm.RunAll(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run:  %2d simulated, %2d served from store\n", warm.Simulated(), warm.StoreHits())

	coldText, err := rrbus.Render(plan, results)
	if err != nil {
		log.Fatal(err)
	}
	warmText, err := rrbus.Render(plan, warmResults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("render byte-identical: %v\n\n", coldText == warmText)

	// 4. Cross-plan reuse: a derivation sweep over the same k range is
	// a *different* plan (different generator, different job IDs), but
	// its per-k jobs measure the same scenarios — same content hashes —
	// so only the δnop calibration job actually simulates.
	derive, err := rrbus.GeneratorPlan("derive", rrbus.Params{"arch": "toy", "kmax": 14})
	if err != nil {
		log.Fatal(err)
	}
	overlap := &rrbus.Session{Store: store}
	deriveResults, err := overlap.RunAll(derive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derive run: %2d simulated, %2d served from store (only the δnop calibration is new)\n",
		overlap.Simulated(), overlap.StoreHits())

	// 5. Render: the full bound derivation, rebuilt from recorded rows —
	// 14 of which were measured by a different plan.
	d, err := rrbus.DeriveFromResults(derive, deriveResults)
	if err != nil {
		log.Fatal(err)
	}
	if d.Err != nil {
		log.Fatal(d.Err)
	}
	fmt.Printf("derived ubdm = %d cycles (actual ubd = %d) — from the store, not the simulator\n",
		d.Res.UBDm, d.Cfg.UBD())
}
