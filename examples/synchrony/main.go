// Synchrony: visualize the synchrony effect that defeats naive
// measurement-based bounds (§3 of the paper).
//
// Under full load a round-robin bus locks into a fixed schedule; each
// request of the observed core then suffers a single contention delay
// γ(δ) that depends only on its injection time δ — not the worst case ubd.
// This example traces a small platform (ubd = 6) and prints the bus
// timeline and the measured γ for increasing δ, reproducing the paper's
// Figs. 2, 3 and 5.
//
// Run with:
//
//	go run ./examples/synchrony
package main

import (
	"fmt"
	"log"

	"rrbus"
)

func main() {
	// Toy platform: 4 cores, lbus = 2 → ubd = 6 (the paper's Fig. 3).
	cfg := rrbus.ScaledConfig(rrbus.ReferenceNGMP(), 4, 1, 1)

	fmt.Println("γ(δ) under the synchrony effect (simulated vs Eq. 2):")
	fmt.Println("delta  gamma(sim)  gamma(eq2)")
	for delta := 1; delta <= 13; delta++ {
		g, err := measureGamma(cfg, delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %10d  %10d\n", delta, g, rrbus.AnalyticGamma(delta, cfg.UBD()))
	}

	// Timeline for one scenario: δ = 9 → γ = 3 (the paper's Fig. 2).
	fmt.Println("\nbus timeline for δ=9 (ports 0..3 = cores, port 4 = memory):")
	tl, gamma, err := timeline(cfg, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tl)
	fmt.Printf("observed γ = %d (ubd is %d — the naive expectation fails)\n", gamma, cfg.UBD())
}

// measureGamma runs rsk-nop(load, δ-1) against three rsk and returns the
// dominant per-request contention delay.
func measureGamma(cfg rrbus.Config, delta int) (int, error) {
	b := rrbus.NewKernelBuilder(cfg)
	scua, err := b.RSKNop(0, rrbus.OpLoad, delta-cfg.DL1.Latency)
	if err != nil {
		return 0, err
	}
	var cont []*rrbus.Program
	for c := 1; c < cfg.Cores; c++ {
		p, err := b.RSK(c, rrbus.OpLoad)
		if err != nil {
			return 0, err
		}
		cont = append(cont, p)
	}
	m, err := rrbus.Run(cfg, rrbus.Workload{Scua: scua, Contenders: cont},
		rrbus.RunOpts{WarmupIters: 3, MeasureIters: 10, CollectGammas: true})
	if err != nil {
		return 0, err
	}
	best, bestN := 0, uint64(0)
	for g, n := range m.GammaHist {
		if n > bestN {
			best, bestN = g, n
		}
	}
	return best, nil
}

// timeline builds a system by hand, attaches a trace recorder, and renders
// the steady-state schedule around one scua request.
func timeline(cfg rrbus.Config, delta int) (string, int, error) {
	b := rrbus.NewKernelBuilder(cfg)
	progs := make([]*rrbus.Program, 0, cfg.Cores)
	iters := make([]uint64, 0, cfg.Cores)
	scua, err := b.RSKNop(0, rrbus.OpLoad, delta-cfg.DL1.Latency)
	if err != nil {
		return "", 0, err
	}
	progs = append(progs, scua)
	iters = append(iters, 20)
	for c := 1; c < cfg.Cores; c++ {
		p, err := b.RSK(c, rrbus.OpLoad)
		if err != nil {
			return "", 0, err
		}
		progs = append(progs, p)
		iters = append(iters, 0)
	}
	sys, err := rrbus.NewSystem(cfg, progs, iters)
	if err != nil {
		return "", 0, err
	}
	rec := &rrbus.TraceRecorder{Cap: 4096}
	rec.Attach(sys.Bus())
	sys.RunUntil(func() bool { return sys.Core(0).Done() }, 1<<22)

	evs := rec.PortEvents(0)
	if len(evs) < 8 {
		return "", 0, fmt.Errorf("too few traced events: %d", len(evs))
	}
	e := evs[len(evs)-4]
	from := uint64(0)
	if e.Ready >= 4 {
		from = e.Ready - 4
	}
	return rrbus.RenderTimeline(rec.Events(), cfg.Cores+1, from, e.Grant+uint64(e.Occupancy)+2), int(e.Gamma), nil
}
