// Automotive: an MBTA-style end-to-end use of the derived bound, on the
// EEMBC-Autobench-like workloads the paper evaluates with.
//
// For a CAN-handling task we (1) measure its isolation execution time and
// bus-request count nr, (2) derive ubdm once for the platform with the
// rsk-nop methodology, (3) pad the bound: ETB = et_isol + nr*ubdm, and
// (4) validate the bound against the task's observed execution times in
// random 4-task workloads — including against three bus-hammering rsk.
//
// Run with:
//
//	go run ./examples/automotive
package main

import (
	"fmt"
	"log"

	"rrbus"
)

func main() {
	cfg := rrbus.ReferenceNGMP()

	// Step 1: the task under analysis.
	prof, ok := rrbus.EEMBCProfile("tblook")
	if !ok {
		log.Fatal("profile tblook missing")
	}
	task, err := prof.Build(0, 7)
	if err != nil {
		log.Fatal(err)
	}
	opts := rrbus.RunOpts{WarmupIters: 2, MeasureIters: 10}
	isol, err := rrbus.RunIsolation(cfg, task, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task %s: isolation %d cycles, nr=%d bus requests (PMC)\n",
		task.Name, isol.Cycles, isol.Requests)

	// Step 2: derive the platform's ubd from measurements.
	res, err := rrbus.DeriveUBD(cfg, rrbus.DeriveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived ubdm = %d cycles (confidence %.2f)\n", res.UBDm, res.Confidence.Score())

	// Step 3: pad.
	etb := res.ETB(isol.Cycles, isol.Requests)
	fmt.Printf("ETB = %d + %d×%d = %d cycles\n\n", isol.Cycles, isol.Requests, res.UBDm, etb)

	// Step 4: validate against observed workloads.
	fmt.Println("observed execution times under contention:")
	worst := isol.Cycles
	for i, ts := range rrbus.RandomTaskSets(6, cfg.Cores, 99) {
		progs, err := ts.Build()
		if err != nil {
			log.Fatal(err)
		}
		// Replace the first task with our scua; the others contend.
		m, err := rrbus.Run(cfg, rrbus.Workload{Scua: task, Contenders: progs[1:]}, opts)
		if err != nil {
			log.Fatal(err)
		}
		if m.Cycles > worst {
			worst = m.Cycles
		}
		fmt.Printf("  workload %d %-28v %8d cycles (%.1f%% of ETB)\n",
			i, ts.Names[1:], m.Cycles, 100*float64(m.Cycles)/float64(etb))
	}

	// The adversarial case: three bus-hammering rsk contenders.
	b := rrbus.NewKernelBuilder(cfg)
	var rsk []*rrbus.Program
	for c := 1; c < cfg.Cores; c++ {
		p, err := b.RSK(c, rrbus.OpLoad)
		if err != nil {
			log.Fatal(err)
		}
		rsk = append(rsk, p)
	}
	m, err := rrbus.Run(cfg, rrbus.Workload{Scua: task, Contenders: rsk}, opts)
	if err != nil {
		log.Fatal(err)
	}
	if m.Cycles > worst {
		worst = m.Cycles
	}
	fmt.Printf("  vs 3×rsk(load)                        %8d cycles (%.1f%% of ETB)\n",
		m.Cycles, 100*float64(m.Cycles)/float64(etb))

	fmt.Printf("\nworst observed %d ≤ ETB %d: bound holds with %.1f%% headroom\n",
		worst, etb, 100*(float64(etb)/float64(worst)-1))
}
