// Report walkthrough: the Plan→Run→Store→Document→Backend pipeline —
// measure a sweep once into a content-addressed results store, rebuild
// it as a typed Document from the recorded rows of a *warm* store run
// (zero simulations), and encode the same Document three ways: terminal
// text, a self-contained HTML page with inline SVG charts, and a
// schema-versioned JSON document that decodes back losslessly.
//
// Run with:
//
//	go run ./examples/report
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"rrbus"
)

func main() {
	dir := filepath.Join(os.TempDir(), "rrbus-report-example")
	defer os.RemoveAll(dir)
	store, err := rrbus.OpenDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Plan + cold run: fill the store with a Fig. 7 sweep.
	plan, err := rrbus.GeneratorPlan("fig7", rrbus.Params{"arch": "toy", "kmax": 14})
	if err != nil {
		log.Fatal(err)
	}
	cold := &rrbus.Session{Store: store}
	if _, err := cold.RunAll(plan); err != nil {
		log.Fatal(err)
	}

	// 2. Warm run: every row is served from the store — the Document we
	// are about to build touches no simulator at all.
	warm := &rrbus.Session{Store: store}
	results, err := warm.RunAll(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run: %d simulated, %d served from store\n", warm.Simulated(), warm.StoreHits())

	// 3. Document: the figure as typed blocks, not bytes. Inspect it —
	// a heading, the sweep series, a spacer.
	doc, err := rrbus.DocumentFor(plan, results)
	if err != nil {
		log.Fatal(err)
	}
	for i, blk := range doc.Blocks {
		fmt.Printf("block %d: %s\n", i, blk.Kind())
	}

	// 4. Backends: the same Document through all three encodings.
	text, err := rrbus.BackendByName("text")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- text backend (byte-identical to the classic CLI output) ---")
	if err := rrbus.RenderTo(os.Stdout, doc, text); err != nil {
		log.Fatal(err)
	}

	htmlPath := filepath.Join(os.TempDir(), "rrbus-report-example.html")
	f, err := os.Create(htmlPath)
	if err != nil {
		log.Fatal(err)
	}
	html, err := rrbus.BackendByName("html")
	if err != nil {
		log.Fatal(err)
	}
	if err := rrbus.RenderTo(f, doc, html); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- html backend: self-contained page with an inline SVG sweep chart ---\nwrote %s\n\n", htmlPath)
	defer os.Remove(htmlPath)

	// 5. JSON: archive the document itself, decode it later, re-render
	// any encoding without touching the original results.
	var enc strings.Builder
	jsonBackend, err := rrbus.BackendByName("json")
	if err != nil {
		log.Fatal(err)
	}
	if err := rrbus.RenderTo(&enc, doc, jsonBackend); err != nil {
		log.Fatal(err)
	}
	back, err := rrbus.DecodeDocument(strings.NewReader(enc.String()))
	if err != nil {
		log.Fatal(err)
	}
	var replay strings.Builder
	if err := rrbus.RenderTo(&replay, back, text); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- json backend: %d bytes, decodes back losslessly: text re-render identical = %v ---\n",
		enc.Len(), replay.String() == doc.Text())
}
