// Storebuffer: reproduce the paper's store experiment (Fig. 7(b)).
//
// Stores retire into the store buffer and only stall the pipeline when the
// buffer is full, so their contention is partially hidden: sweeping the
// injection time with rsk-nop(store, k) yields a single descending tooth
// that reaches exactly zero once the production interval exceeds the
// contended drain interval — after which the buffer hides all bus
// contention and no saw-tooth period exists for the methodology to read.
// This is why the methodology derives ubd with loads (§5.3).
//
// Run with:
//
//	go run ./examples/storebuffer
package main

import (
	"fmt"
	"log"
	"strings"

	"rrbus"
)

func main() {
	cfg := rrbus.ReferenceNGMP()
	r, err := rrbus.NewRunner(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("store sweep on %s (ubd=%d, lbus=%d, store buffer %d entries)\n\n",
		cfg.Name, cfg.UBD(), cfg.BusLatency(), cfg.StoreBufferDepth)
	fmt.Println("  k  slowdown   per-store")

	zeroFrom := -1
	var maxSlow int64 = 1
	type pt struct {
		k        int
		slow     int64
		perStore float64
	}
	var pts []pt
	for k := 1; k <= 45; k++ {
		cont, err := r.RunContended(rrbus.OpStore, k)
		if err != nil {
			log.Fatal(err)
		}
		isol, err := r.RunIsolation(rrbus.OpStore, k)
		if err != nil {
			log.Fatal(err)
		}
		d := int64(cont.Cycles) - int64(isol.Cycles)
		pts = append(pts, pt{k, d, float64(d) / float64(cont.Requests)})
		if d > maxSlow {
			maxSlow = d
		}
		if d == 0 && zeroFrom < 0 {
			zeroFrom = k
		} else if d != 0 {
			zeroFrom = -1
		}
	}
	for _, p := range pts {
		bar := strings.Repeat("#", int(p.slow*30/maxSlow))
		fmt.Printf("%3d  %8d  %9.2f  %s\n", p.k, p.slow, p.perStore, bar)
	}
	fmt.Printf("\nslowdown is identically zero from k=%d: the store buffer hides all contention\n", zeroFrom)
	fmt.Printf("(paper: one saw-tooth period then zero; tooth length tracks ubd=%d — see EXPERIMENTS.md E7)\n", cfg.UBD())

	// Contrast: the load-based derivation still works, and is the reason
	// the methodology uses loads.
	res, err := rrbus.DeriveUBD(cfg, rrbus.DeriveOptions{Type: rrbus.OpLoad})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nload-based derivation on the same platform: ubdm = %d (actual %d)\n", res.UBDm, cfg.UBD())
}
