package rrbus

import (
	"rrbus/internal/analytic"
	"rrbus/internal/core"
	"rrbus/internal/etb"
	"rrbus/internal/isa"
	"rrbus/internal/kernel"
	"rrbus/internal/sim"
	"rrbus/internal/trace"
	"rrbus/internal/workload"
)

// Re-exported types: the facade names the library's public surface so
// downstream users never import internal packages directly.
type (
	// Config describes a simulated platform (cores, caches, bus timing,
	// memory, arbitration policy).
	Config = sim.Config
	// Workload pairs a measured program with contender programs.
	Workload = sim.Workload
	// RunOpts tunes warmup/measurement windows and observation hooks.
	RunOpts = sim.RunOpts
	// Measurement is the outcome of one run (cycles, requests, PMCs,
	// optional histograms).
	Measurement = sim.Measurement
	// System is a fully wired simulated platform for cycle-level control.
	System = sim.System

	// Program is an instruction sequence for one core.
	Program = isa.Program
	// Instr is one instruction.
	Instr = isa.Instr
	// Op is an instruction class (OpLoad, OpStore, ...).
	Op = isa.Op

	// KernelBuilder generates rsk/rsk-nop/nop kernels for a geometry.
	KernelBuilder = kernel.Builder

	// DeriveOptions configures the ubd derivation methodology.
	DeriveOptions = core.Options
	// DeriveResult carries the derived ubdm, the slowdown series, the
	// per-method period estimates and the confidence report.
	DeriveResult = core.Result
	// NaiveResult carries the prior state-of-the-art det/nr estimate.
	NaiveResult = core.NaiveResult
	// Runner abstracts the measured platform (simulator or hardware).
	Runner = core.Runner
	// SimRunner is the simulator-backed Runner.
	SimRunner = core.SimRunner
	// Confidence is the §4.3 confidence report of a derivation.
	Confidence = core.Confidence

	// Profile is one EEMBC-Autobench-like synthetic benchmark.
	Profile = workload.Profile
	// TaskSet is one multi-task workload of profiles.
	TaskSet = workload.TaskSet

	// TraceRecorder captures bus grant events for timeline rendering.
	TraceRecorder = trace.Recorder
	// TraceEvent is one granted bus transaction.
	TraceEvent = trace.Event

	// Task is a software component analyzed by the ETB layer.
	Task = etb.Task
	// Bound is a task's padded execution-time bound.
	Bound = etb.Bound
	// Validation records a bound checked against one contention scenario.
	Validation = etb.Validation
	// Analyzer derives and validates execution-time bounds (§4.3 MBTA).
	Analyzer = etb.Analyzer
	// ETBReport collects bounds and validations for rendering.
	ETBReport = etb.Report

	// NoisyRunner wraps a Runner with deterministic measurement jitter,
	// for robustness studies against real-board noise.
	NoisyRunner = core.NoisyRunner
)

// Instruction classes.
const (
	OpNop    = isa.OpNop
	OpLoad   = isa.OpLoad
	OpStore  = isa.OpStore
	OpIALU   = isa.OpIALU
	OpBranch = isa.OpBranch
)

// ArbiterKind selects a bus arbitration policy in Config.
type ArbiterKind = sim.ArbiterKind

// Bus arbitration policies.
const (
	ArbiterRR      = sim.ArbiterRR
	ArbiterTDMA    = sim.ArbiterTDMA
	ArbiterFP      = sim.ArbiterFP
	ArbiterLottery = sim.ArbiterLottery
	ArbiterWRR     = sim.ArbiterWRR
)

// ReferenceNGMP returns the paper's reference platform (§5.1): 4 cores,
// 1-cycle L1s, round-robin bus with lbus = 9, so ubd = 27.
func ReferenceNGMP() Config { return sim.NGMPRef() }

// VariantNGMP returns the paper's variant platform: 4-cycle L1s, which
// raises the rsk injection time from 1 to 4 cycles.
func VariantNGMP() Config { return sim.NGMPVar() }

// ScaledConfig derives a platform with a different core count and bus
// latency split from cfg (parametric studies).
func ScaledConfig(cfg Config, cores, transferLat, l2HitLat int) Config {
	return sim.Scaled(cfg, cores, transferLat, l2HitLat)
}

// NewRunner builds the simulator-backed measurement runner for cfg.
func NewRunner(cfg Config) (*SimRunner, error) { return core.NewSimRunner(cfg) }

// DeriveUBD runs the paper's full methodology (§4.2) on cfg's simulated
// platform and returns the measured upper-bound delay with its confidence
// report.
func DeriveUBD(cfg Config, opt DeriveOptions) (*DeriveResult, error) {
	r, err := core.NewSimRunner(cfg)
	if err != nil {
		return nil, err
	}
	opt.AutoExtend = true
	return core.Derive(r, opt)
}

// Derive runs the methodology on an arbitrary Runner (e.g. a hardware
// harness).
func Derive(r Runner, opt DeriveOptions) (*DeriveResult, error) { return core.Derive(r, opt) }

// NaiveUBDM measures the prior state-of-the-art estimate det/nr on cfg,
// the baseline the paper improves on.
func NaiveUBDM(cfg Config, t Op) (*NaiveResult, error) {
	r, err := core.NewSimRunner(cfg)
	if err != nil {
		return nil, err
	}
	return core.NaiveUBDM(r, t)
}

// NaiveUBDMFor measures the naive det/nr estimate on an existing Runner
// (reusing the runner a derivation already built).
func NaiveUBDMFor(r Runner, t Op) (*NaiveResult, error) { return core.NaiveUBDM(r, t) }

// Run executes a workload on cfg and measures the scua.
func Run(cfg Config, w Workload, opt RunOpts) (*Measurement, error) { return sim.Run(cfg, w, opt) }

// RunIsolation measures scua alone on cfg.
func RunIsolation(cfg Config, scua *Program, opt RunOpts) (*Measurement, error) {
	return sim.RunIsolation(cfg, scua, opt)
}

// NewSystem wires a platform for cycle-level control (tracing, custom
// experiment loops). maxIters[i] bounds core i's iterations (0 = forever).
func NewSystem(cfg Config, programs []*Program, maxIters []uint64) (*System, error) {
	return sim.NewSystem(cfg, programs, maxIters)
}

// NewKernelBuilder returns a kernel generator for cfg's cache geometry.
func NewKernelBuilder(cfg Config) KernelBuilder {
	return kernel.NewBuilder(cfg.DL1, cfg.IL1, cfg.L2)
}

// AnalyticUBD is Eq. 1: (nc-1) * lbus.
func AnalyticUBD(nc, lbus int) int { return analytic.UBD(nc, lbus) }

// AnalyticGamma is Eq. 2: the synchrony-effect contention delay γ(δ).
func AnalyticGamma(delta, ubd int) int { return analytic.Gamma(delta, ubd) }

// EEMBCProfiles returns the 16 Autobench-like synthetic benchmark profiles.
func EEMBCProfiles() []Profile { return workload.Profiles() }

// EEMBCProfile returns the named profile.
func EEMBCProfile(name string) (Profile, bool) { return workload.ByName(name) }

// RandomTaskSets draws reproducible multi-task workloads (the paper's "8
// randomly generated 4-task workloads").
func RandomTaskSets(count, nTasks int, seed uint64) []TaskSet {
	return workload.RandomTaskSets(count, nTasks, seed)
}

// RenderTimeline renders recorded bus events as an ASCII Gantt chart
// (Figs. 2/3/5 style).
func RenderTimeline(events []TraceEvent, nports int, from, to uint64) string {
	return trace.Timeline(events, nports, from, to)
}

// NewAnalyzer builds an ETB analyzer for cfg using the derived per-request
// bound ubdm.
func NewAnalyzer(cfg Config, ubdm int, opts RunOpts) (*Analyzer, error) {
	return etb.NewAnalyzer(cfg, ubdm, opts)
}

// NewETBReport creates an empty bound/validation report for cfg.
func NewETBReport(cfg Config, ubdm int) *ETBReport { return etb.NewReport(cfg, ubdm) }

// NewNoisyRunner wraps r with additive measurement jitter up to amplitude
// cycles (deterministic; seed 0 selects a default).
func NewNoisyRunner(r Runner, amplitude, seed uint64) (*NoisyRunner, error) {
	return core.NewNoisyRunner(r, amplitude, seed)
}
