package rrbus

// The serving surface of the pipeline: a long-running HTTP server over a
// content-addressed results store — plan submissions in, rendered bound
// documents out, warm plans served with zero simulation. See the
// "Serving" section of doc.go for the endpoint contract; cmd/rrbus-serve
// is the thin daemon over exactly this API.

import (
	"rrbus/internal/serve"
	"rrbus/internal/store"
)

type (
	// Server is the HTTP handler of the bound-as-a-service layer:
	// POST /v1/plans submits plans, GET /v1/plans/{hash} reports status,
	// GET /v1/plans/{hash}/doc renders documents through the report
	// backends, GET /metrics exposes Prometheus metrics. Create with
	// NewServer, mount on any http.Server, stop with Drain.
	Server = serve.Server
	// ServeOptions configure a Server (session worker count,
	// concurrent plan bound, retry policy).
	ServeOptions = serve.Options
	// PlanStatus is the JSON body of the server's plan status endpoints:
	// the StorePlanInfo shape extended with run status and the live
	// Session counters.
	PlanStatus = serve.PlanStatus
	// DrainSummary is what Server.Drain reports: the Session
	// counters summed over every session the server ran.
	DrainSummary = serve.DrainSummary
	// JobDedup coordinates concurrent sessions sharing one store so a
	// missing job hash simulates at most once across all of them (the
	// server wires one in automatically; standalone pipelines can too).
	JobDedup = store.Dedup
	// DedupStore is one session run's view of a JobDedup-guarded store.
	DedupStore = store.DedupStore
)

// Plan lifecycle statuses reported by a Server.
const (
	PlanQueued      = serve.StatusQueued
	PlanSimulating  = serve.StatusSimulating
	PlanComplete    = serve.StatusComplete
	PlanFailed      = serve.StatusFailed
	PlanInterrupted = serve.StatusInterrupted
	PlanPartial     = serve.StatusPartial
)

// NewServer returns a bound-serving HTTP handler over st. The store is
// shared ground truth: rows recorded by CLIs are served warm, rows the
// server simulates become visible to them.
func NewServer(st Store, opts ServeOptions) *Server { return serve.New(st, opts) }

// NewJobDedup returns an empty cross-session claim table for one store.
func NewJobDedup() *JobDedup { return store.NewDedup() }

// StorePlansDocument builds the plan-manifest audit listing (one row per
// recorded plan with job count and row coverage) — the one builder
// behind both `rrbus-store ls` and the server's GET /v1/store/plans, so
// the two surfaces agree byte for byte.
func StorePlansDocument(label string, infos []StorePlanInfo, rows int) *Document {
	return serve.PlansDocument(label, infos, rows)
}
